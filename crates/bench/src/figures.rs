//! Figure 3 (page load time with/without push) and Figure 6 (RTT by four
//! estimators).

use std::fmt::Write as _;

use h2scope::pageload;
use h2scope::probes::ping::{compare_rtt, median};
use webpop::Population;

use crate::stats::{cdf_points, mean};

/// Figure 3: page load time for every push-capable site, push enabled vs
/// disabled, `loads` loads each (the paper uses 30).
pub fn fig3(population: &Population, loads: usize) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "FIGURE 3 — Page load time with server push enabled/disabled ({}; {loads} loads/site)",
        population.spec().label
    )
    .unwrap();
    writeln!(
        out,
        "  {:<34}{:>14}{:>14}{:>10}",
        "site", "push (ms)", "no push (ms)", "saving"
    )
    .unwrap();
    let mut sites = 0;
    let mut improved = 0;
    for sample in population.iter_headers_sites() {
        if sample.site.push_manifest.is_empty() || !sample.profile.behavior.push {
            continue;
        }
        sites += 1;
        let (enabled, disabled) = pageload::compare(&sample.target(), loads);
        let push_mean = mean(&enabled);
        let nopush_mean = mean(&disabled);
        if push_mean < nopush_mean {
            improved += 1;
        }
        writeln!(
            out,
            "  {:<34}{:>14.1}{:>14.1}{:>9.1}%",
            sample.site.authority,
            push_mean,
            nopush_mean,
            (1.0 - push_mean / nopush_mean) * 100.0
        )
        .unwrap();
    }
    writeln!(
        out,
        "  push reduced mean load time on {improved}/{sites} sites (paper: \"in most cases\")"
    )
    .unwrap();
    out
}

/// Figure 6: RTT CDFs from the four estimators over a sample of sites
/// (the paper samples 10 sites per popular server).
pub fn fig6(population: &Population, sites: usize, samples_per_site: usize) -> String {
    let mut h2_ping = Vec::new();
    let mut icmp = Vec::new();
    let mut tcp = Vec::new();
    let mut h1 = Vec::new();
    for (k, sample) in population.iter_headers_sites().take(sites).enumerate() {
        let comparison = compare_rtt(&sample.target(), samples_per_site, 0xf16 ^ k as u64);
        h2_ping.extend(comparison.h2_ping);
        icmp.extend(comparison.icmp);
        tcp.extend(comparison.tcp);
        h1.extend(comparison.h1_request);
    }
    let ticks: Vec<f64> = (0..=8).map(|i| i as f64 * 50.0).collect();
    let mut out = String::new();
    writeln!(
        out,
        "FIGURE 6 — RTT measured by ICMP, TCP, HTTP/1.1 and HTTP/2 PING ({sites} sites)",
    )
    .unwrap();
    for (label, samples) in [
        ("h2-ping", &h2_ping),
        ("icmp", &icmp),
        ("tcp-rtt", &tcp),
        ("h2-request (HTTP/1.1)", &h1),
    ] {
        write!(
            out,
            "  {label:<22} median {:>8.2} ms   cdf:",
            median(samples)
        )
        .unwrap();
        for (x, f) in cdf_points(samples, &ticks) {
            write!(out, " {x:.0}ms:{f:.2}").unwrap();
        }
        writeln!(out).unwrap();
    }
    let (m_ping, m_icmp, m_tcp, m_h1) =
        (median(&h2_ping), median(&icmp), median(&tcp), median(&h1));
    writeln!(
        out,
        "  shape check: |h2-icmp| = {:.2} ms, |h2-tcp| = {:.2} ms, h1 - h2 = {:.2} ms \
         (paper: h2-ping ≈ tcp ≈ icmp < http/1.1)",
        (m_ping - m_icmp).abs(),
        (m_ping - m_tcp).abs(),
        m_h1 - m_ping
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use webpop::ExperimentSpec;

    #[test]
    fn fig3_finds_push_sites_and_push_wins() {
        let population = Population::new(ExperimentSpec::second(), 0.1);
        let rendered = fig3(&population, 3);
        assert!(
            rendered.contains("push reduced mean load time"),
            "{rendered}"
        );
        // At 10% of experiment 2 there are ~2 push sites; at least one
        // must appear and improve.
        let improved_line = rendered.lines().last().expect("summary line");
        assert!(!improved_line.contains("0/0"), "{rendered}");
    }

    #[test]
    fn fig6_orders_estimators_like_the_paper() {
        let population = Population::new(ExperimentSpec::first(), 0.01);
        let rendered = fig6(&population, 8, 5);
        // The h1 - h2 gap must be positive (processing delay).
        let line = rendered
            .lines()
            .find(|l| l.contains("shape check"))
            .unwrap();
        let gap: f64 = line
            .split("h1 - h2 = ")
            .nth(1)
            .and_then(|s| s.split(" ms").next())
            .and_then(|s| s.trim().parse().ok())
            .expect("parse gap");
        assert!(gap > 0.0, "{rendered}");
    }
}
