//! The per-profile robustness quirk matrix (§VI).
//!
//! Table III asked "which conformance quirks does each server show?";
//! this matrix asks the same question about abuse hardening: does the
//! server budget stream resets, cap CONTINUATION blocks, reap stalled
//! connections, bound header lists — and *how* does it react when the
//! bound is crossed? Built directly on the `h2scope::probes::abuse`
//! suite so the answers are measured, not transcribed.

use serde::{Deserialize, Serialize};

use h2scope::probes::abuse::{self, AbuseHardeningReport};
use h2scope::{Reaction, Target};
use h2server::{ServerProfile, SiteSpec};

/// One measured row of the robustness matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustnessRow {
    /// Server the row describes.
    pub server: String,
    /// The five measured reactions.
    pub report: AbuseHardeningReport,
}

impl RobustnessRow {
    /// How many of the five vectors this server defends against.
    pub fn defenses(&self) -> u32 {
        [
            self.report.rst_rate,
            self.report.settings_rate,
            self.report.continuation_bound,
            self.report.stalled_stream,
            self.report.header_list_bound,
        ]
        .iter()
        .filter(|r| **r != Reaction::Ignored)
        .count() as u32
    }
}

/// Probes every testbed profile plus the RFC reference and returns the
/// matrix in testbed order. Pure: same build, same matrix.
pub fn robustness_matrix() -> Vec<RobustnessRow> {
    let mut profiles = ServerProfile::testbed();
    profiles.push(ServerProfile::rfc7540());
    profiles
        .into_iter()
        .map(|profile| {
            let server = profile.name.clone();
            let target = Target::testbed(profile, SiteSpec::benchmark());
            RobustnessRow {
                server,
                report: abuse::probe(&target),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_the_whole_testbed_plus_reference() {
        let matrix = robustness_matrix();
        assert_eq!(matrix.len(), 7);
        assert_eq!(matrix.last().map(|r| r.server.as_str()), Some("RFC 7540"));
    }

    #[test]
    fn rows_genuinely_differ_and_the_reference_defends_nothing() {
        let matrix = robustness_matrix();
        for (i, a) in matrix.iter().enumerate() {
            for b in &matrix[i + 1..] {
                assert_ne!(
                    a.report, b.report,
                    "{} and {} must differ somewhere",
                    a.server, b.server
                );
            }
        }
        let reference = matrix.last().expect("nonempty");
        assert_eq!(reference.defenses(), 0);
        assert!(matrix.iter().any(|r| r.defenses() >= 3));
    }
}
