//! The malicious-client generator: seven abuse vectors, each a pure
//! function of `(target, seed)` running in virtual time.
//!
//! The volumes here are *campaign* volumes — large enough that the
//! online detector separates them from benign page loads by an order
//! of magnitude, small enough that a mixed campaign over hundreds of
//! sites stays fast. The `h2scope::probes::abuse` suite uses larger,
//! limit-exceeding volumes for the robustness matrix; both exist so
//! that probing a bound and simulating an attacker stay distinct jobs.

use serde::{Deserialize, Serialize};

use h2hpack::Header;
use h2scope::{ProbeConn, Reaction, Target, TimedFrame};
use h2wire::{
    DataFrame, ErrorCode, Frame, PingFrame, RstStreamFrame, SettingId, Settings, SettingsFrame,
    StreamId,
};
use netsim::time::SimDuration;

use crate::report::AttackReport;

/// Octets of the connection prelude every vector pays: the client
/// preface (24) plus an empty SETTINGS frame (9 + 6 of padding slack
/// kept for parity with `h2dos`'s ledger).
const PRELUDE_OCTETS: u64 = 24 + 9 + 6;

/// Request+RST pairs in a rapid-reset engagement.
pub const RAPID_RESET_STREAMS: u32 = 48;
/// CONTINUATION fragments (1 KiB each) in a flood engagement.
pub const CONTINUATION_FLOOD_FRAGMENTS: u32 = 32;
/// Large objects a slow reader pins at a 1-octet window.
pub const SLOW_READ_STREAMS: u32 = 4;
/// How long the slow reader goes silent before its liveness PING.
pub const SLOW_READ_STALL_SECS: u64 = 90;
/// DATA trickles in a slow-POST engagement.
pub const SLOW_POST_TRICKLES: u32 = 6;
/// Quiet gap between slow-POST trickles.
pub const SLOW_POST_GAP_SECS: u64 = 10;
/// SETTINGS frames in a flood engagement.
pub const SETTINGS_FLOOD_FRAMES: u32 = 120;
/// Requests in a table-thrash engagement (folded from `h2dos`).
pub const TABLE_THRASH_REQUESTS: u32 = 48;
/// Idle-stream chain depth in a priority-churn engagement.
pub const PRIORITY_CHURN_DEPTH: u32 = 32;
/// Chain reversals in a priority-churn engagement.
pub const PRIORITY_CHURN_ROUNDS: u32 = 8;

/// The seven abuse vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttackVector {
    /// Open a stream, cancel it immediately, repeat (CVE-2023-44487's
    /// shape): request work is free, canceled work is not.
    RapidReset,
    /// A header block that never ends: HEADERS without END_HEADERS,
    /// then CONTINUATION fragments forever (RFC 7540 §4.3 sets no cap).
    ContinuationFlood,
    /// Advertise a 1-octet window, request large objects, go silent —
    /// the paper's slow-receiver memory pin (folds `h2dos::slow_receiver`).
    SlowRead,
    /// Announce a request body and trickle it an octet at a time with
    /// long quiet gaps, holding request state open indefinitely.
    SlowPost,
    /// SETTINGS frames in bulk: each extorts an ack (RFC 7540 §6.5.3).
    SettingsFlood,
    /// Announce a huge header table and thrash insertions into it
    /// (folds `h2dos::table_thrash`).
    TableThrash,
    /// Deep idle-stream dependency chains, repeatedly reversed (folds
    /// `h2dos::priority_churn`).
    PriorityChurn,
}

impl AttackVector {
    /// All vectors, in the order tables render them.
    pub const ALL: [AttackVector; 7] = [
        AttackVector::RapidReset,
        AttackVector::ContinuationFlood,
        AttackVector::SlowRead,
        AttackVector::SlowPost,
        AttackVector::SettingsFlood,
        AttackVector::TableThrash,
        AttackVector::PriorityChurn,
    ];

    /// Stable machine-friendly name (what `--vectors` parses).
    pub fn name(self) -> &'static str {
        match self {
            AttackVector::RapidReset => "rapid-reset",
            AttackVector::ContinuationFlood => "continuation-flood",
            AttackVector::SlowRead => "slow-read",
            AttackVector::SlowPost => "slow-post",
            AttackVector::SettingsFlood => "settings-flood",
            AttackVector::TableThrash => "table-thrash",
            AttackVector::PriorityChurn => "priority-churn",
        }
    }

    /// Parses a vector name as produced by [`AttackVector::name`].
    pub fn parse(name: &str) -> Option<AttackVector> {
        AttackVector::ALL.into_iter().find(|v| v.name() == name)
    }
}

impl std::fmt::Display for AttackVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// First defensive frame wins, same taxonomy as the probe suite.
fn classify(frames: &[TimedFrame]) -> Reaction {
    for tf in frames {
        match &tf.frame {
            Frame::RstStream(_) => return Reaction::RstStream,
            Frame::Goaway(g) => {
                return if g.debug_data.is_empty() {
                    Reaction::Goaway
                } else {
                    Reaction::GoawayWithDebug
                };
            }
            _ => {}
        }
    }
    Reaction::Ignored
}

/// Runs one vector against `target`, seeded so the whole engagement —
/// connection randomness included — replays deterministically.
pub fn run(vector: AttackVector, target: &Target, seed: u64) -> AttackReport {
    match vector {
        AttackVector::RapidReset => rapid_reset(target, seed),
        AttackVector::ContinuationFlood => continuation_flood(target, seed),
        AttackVector::SlowRead => slow_read(target, seed),
        AttackVector::SlowPost => slow_post(target, seed),
        AttackVector::SettingsFlood => settings_flood(target, seed),
        AttackVector::TableThrash => table_thrash(target),
        AttackVector::PriorityChurn => priority_churn(target),
    }
}

fn rapid_reset(target: &Target, seed: u64) -> AttackReport {
    let mut conn = ProbeConn::establish(target, Settings::new(), seed ^ 0x5e5e7);
    conn.exchange();
    let mut frames = 1u64;
    let mut octets = PRELUDE_OCTETS;
    for k in 0..RAPID_RESET_STREAMS {
        let header_len = conn.get(1 + 2 * k, "/", None) as u64;
        conn.send(Frame::RstStream(RstStreamFrame {
            stream_id: StreamId::new(1 + 2 * k),
            code: ErrorCode::Cancel,
        }));
        frames = frames.saturating_add(2);
        octets = octets.saturating_add(9 + header_len).saturating_add(13);
        if conn.is_dead() {
            break;
        }
    }
    conn.exchange();
    let canceled = u64::from(conn.server().rst_frames_seen());
    AttackReport::new(
        AttackVector::RapidReset,
        frames,
        octets,
        canceled,
        "canceled requests",
        classify(&conn.received),
    )
}

fn continuation_flood(target: &Target, seed: u64) -> AttackReport {
    let mut conn = ProbeConn::establish(target, Settings::new(), seed ^ 0xc047);
    conn.exchange();
    let fragment = vec![0u8; 1_024];
    conn.send(Frame::Headers(h2wire::HeadersFrame {
        stream_id: StreamId::new(1),
        fragment: bytes::Bytes::copy_from_slice(&fragment),
        end_stream: false,
        end_headers: false,
        priority: None,
        pad_len: None,
    }));
    let mut frames = 2u64;
    let mut octets = PRELUDE_OCTETS.saturating_add(9 + 1_024);
    for _ in 0..CONTINUATION_FLOOD_FRAGMENTS {
        if conn.is_dead() {
            break;
        }
        conn.send(Frame::Continuation(h2wire::ContinuationFrame {
            stream_id: StreamId::new(1),
            fragment: bytes::Bytes::copy_from_slice(&fragment),
            end_headers: false,
        }));
        frames = frames.saturating_add(1);
        octets = octets.saturating_add(9 + 1_024);
    }
    conn.exchange();
    let buffered = conn.server().core().header_block_accumulated() as u64;
    AttackReport::new(
        AttackVector::ContinuationFlood,
        frames,
        octets,
        buffered,
        "buffered octets",
        classify(&conn.received),
    )
}

fn slow_read(target: &Target, seed: u64) -> AttackReport {
    let settings = Settings::new().with(SettingId::InitialWindowSize, 1);
    let mut conn = ProbeConn::establish(target, settings, seed ^ 0x510_ead);
    conn.exchange();
    let mut frames = 1u64;
    let mut octets = PRELUDE_OCTETS;
    for k in 0..SLOW_READ_STREAMS {
        let path = format!("/big/{}", 1 + (k % 7));
        let header_len = conn.get(1 + 2 * k, &path, None) as u64;
        frames = frames.saturating_add(1);
        octets = octets.saturating_add(9 + header_len);
    }
    conn.exchange();
    let leaked: u64 = conn
        .received
        .iter()
        .filter_map(|tf| match &tf.frame {
            Frame::Data(d) => Some(d.data.len() as u64),
            _ => None,
        })
        .sum();
    // Silence: the attacker holds the connection open without reading.
    conn.advance(SimDuration::from_secs(SLOW_READ_STALL_SECS));
    conn.send(Frame::Ping(PingFrame::request([0x51; 8])));
    frames = frames.saturating_add(1);
    octets = octets.saturating_add(17);
    conn.exchange();
    let folded = h2dos::SlowReceiverReport {
        attacker_octets: octets,
        pinned_octets: conn.server().pending_response_octets(),
        amplification: conn
            .server()
            .pending_response_octets()
            .checked_div(octets)
            .unwrap_or(0),
        leaked_octets: leaked,
    };
    let mut report = AttackReport::from_slow_receiver(&folded, classify(&conn.received));
    report.attacker_frames = frames;
    report
}

fn slow_post(target: &Target, seed: u64) -> AttackReport {
    let mut conn = ProbeConn::establish(target, Settings::new(), seed ^ 0x510_0057);
    conn.exchange();
    let headers = vec![
        Header::new(":method", "POST"),
        Header::new(":scheme", "https"),
        Header::new(":path", "/"),
        Header::new(":authority", target.site.authority.clone()),
        Header::new("content-type", "application/x-www-form-urlencoded"),
    ];
    let header_len = conn.send_header_block(1, &headers, false) as u64;
    let mut frames = 2u64;
    let mut octets = PRELUDE_OCTETS.saturating_add(9 + header_len);
    conn.exchange();
    for k in 0..SLOW_POST_TRICKLES {
        if conn.is_dead() {
            break;
        }
        conn.advance(SimDuration::from_secs(SLOW_POST_GAP_SECS));
        conn.send(Frame::Data(DataFrame {
            stream_id: StreamId::new(1),
            data: bytes::Bytes::copy_from_slice(&[b'a' + (k % 26) as u8]),
            end_stream: false,
            pad_len: None,
        }));
        frames = frames.saturating_add(1);
        octets = octets.saturating_add(10);
        conn.exchange();
    }
    let stalled = conn.server().pending_request_count() as u64;
    AttackReport::new(
        AttackVector::SlowPost,
        frames,
        octets,
        stalled,
        "stalled requests",
        classify(&conn.received),
    )
}

fn settings_flood(target: &Target, seed: u64) -> AttackReport {
    let mut conn = ProbeConn::establish(target, Settings::new(), seed ^ 0x5e77f);
    conn.exchange();
    let mut frames = 1u64;
    let mut octets = PRELUDE_OCTETS;
    let mut batch = Vec::with_capacity(16);
    let mut sent = 0u32;
    while sent < SETTINGS_FLOOD_FRAMES && !conn.is_dead() {
        batch.clear();
        while batch.len() < 16 && sent < SETTINGS_FLOOD_FRAMES {
            batch.push(Frame::Settings(SettingsFrame::from(Settings::new())));
            sent = sent.saturating_add(1);
        }
        frames = frames.saturating_add(batch.len() as u64);
        octets = octets.saturating_add(9 * batch.len() as u64);
        conn.send_all(&batch);
        conn.exchange();
    }
    let acks = conn
        .received
        .iter()
        .filter(|tf| matches!(&tf.frame, Frame::Settings(s) if s.ack))
        .count() as u64;
    AttackReport::new(
        AttackVector::SettingsFlood,
        frames,
        octets,
        acks,
        "acks extorted",
        classify(&conn.received),
    )
}

fn table_thrash(target: &Target) -> AttackReport {
    let r = h2dos::table_thrash::attack(target, 1 << 26, TABLE_THRASH_REQUESTS);
    // The thrash's wire cost is its requests: ~40 octets of HEADERS each
    // once the static entries are table hits, plus the prelude.
    let octets = PRELUDE_OCTETS.saturating_add(u64::from(r.requests).saturating_mul(49));
    AttackReport::from_table_thrash(&r, octets)
}

fn priority_churn(target: &Target) -> AttackReport {
    let r = h2dos::priority_churn::attack(target, PRIORITY_CHURN_DEPTH, PRIORITY_CHURN_ROUNDS);
    AttackReport::from_priority_churn(&r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2server::{ServerProfile, SiteSpec};

    fn reference() -> Target {
        Target::testbed(ServerProfile::rfc7540(), SiteSpec::benchmark())
    }

    #[test]
    fn vector_names_round_trip() {
        for v in AttackVector::ALL {
            assert_eq!(AttackVector::parse(v.name()), Some(v));
        }
        assert_eq!(AttackVector::parse("nope"), None);
    }

    #[test]
    fn rapid_reset_counts_canceled_requests() {
        let r = run(AttackVector::RapidReset, &reference(), 0);
        assert_eq!(r.server_cost, u64::from(RAPID_RESET_STREAMS));
        assert!(!r.defended, "the RFC reference has no reset budget");
    }

    #[test]
    fn rapid_reset_is_cut_short_by_a_hardened_server() {
        let target = Target::testbed(ServerProfile::h2o(), SiteSpec::benchmark());
        let r = run(AttackVector::RapidReset, &target, 0);
        assert!(!r.defended, "48 resets sit far under H2O's 400 budget");
    }

    #[test]
    fn continuation_flood_pins_the_open_block() {
        let r = run(AttackVector::ContinuationFlood, &reference(), 0);
        assert_eq!(r.server_cost, 1_024 * 33, "HEADERS + 32 fragments");
        assert!(!r.defended);

        let apache = Target::testbed(ServerProfile::apache(), SiteSpec::benchmark());
        let r = run(AttackVector::ContinuationFlood, &apache, 0);
        assert!(r.defended, "33 KiB crosses Apache's 16 KiB cap");
    }

    #[test]
    fn slow_read_pins_response_bodies() {
        let r = run(AttackVector::SlowRead, &reference(), 0);
        assert_eq!(r.vector, AttackVector::SlowRead);
        assert!(r.server_cost > 1_000_000, "{r:?}");
        assert!(r.amplification > 1_000, "{r:?}");
    }

    #[test]
    fn slow_read_is_reaped_by_stall_timeouts() {
        let apache = Target::testbed(ServerProfile::apache(), SiteSpec::benchmark());
        let r = run(AttackVector::SlowRead, &apache, 0);
        assert_eq!(r.reaction, Reaction::GoawayWithDebug, "{r:?}");
    }

    #[test]
    fn slow_post_holds_a_request_open() {
        let r = run(AttackVector::SlowPost, &reference(), 0);
        assert_eq!(r.server_cost, 1, "one forever-pending request");
        assert!(!r.defended);

        let apache = Target::testbed(ServerProfile::apache(), SiteSpec::benchmark());
        let r = run(AttackVector::SlowPost, &apache, 0);
        assert!(r.defended, "trickles past 30 s hit Apache's stall reaper");
    }

    #[test]
    fn settings_flood_extorts_acks() {
        let r = run(AttackVector::SettingsFlood, &reference(), 0);
        assert_eq!(r.server_cost, u64::from(SETTINGS_FLOOD_FRAMES) + 1);
        assert!(!r.defended);

        let apache = Target::testbed(ServerProfile::apache(), SiteSpec::benchmark());
        let r = run(AttackVector::SettingsFlood, &apache, 0);
        assert!(r.defended, "120 frames cross Apache's 100 budget");
        assert!(r.server_cost <= 101, "acks stop at the budget: {r:?}");
    }

    #[test]
    fn folded_vectors_report_through_the_same_schema() {
        let thrash = run(AttackVector::TableThrash, &reference(), 0);
        assert_eq!(thrash.cost_unit, "table octets");
        let churn = run(AttackVector::PriorityChurn, &reference(), 0);
        assert_eq!(churn.cost_unit, "tree nodes");
        assert_eq!(churn.server_cost, u64::from(PRIORITY_CHURN_DEPTH));
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        for v in AttackVector::ALL {
            let a = run(v, &reference(), 42);
            let b = run(v, &reference(), 42);
            assert_eq!(a, b, "{v} must replay identically");
        }
    }
}
