//! The unified attack-report schema.
//!
//! Every vector — the four new ones and the three folded in from
//! `h2dos` — reduces to the same ledger: what the attacker spent, what
//! it cost the server, and whether the server defended itself. All
//! arithmetic is checked/saturating: a report is a measurement, and a
//! measurement that panics on overflow measured nothing.

use serde::{Deserialize, Serialize};

use h2dos::{ChurnReport, SlowReceiverReport, TableThrashReport};
use h2scope::Reaction;

use crate::vectors::AttackVector;

/// Outcome of one attack engagement against one target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackReport {
    /// Which vector ran.
    pub vector: AttackVector,
    /// Frames the attacker transmitted.
    pub attacker_frames: u64,
    /// Octets the attacker transmitted (including preface/SETTINGS).
    pub attacker_octets: u64,
    /// What the engagement cost the server, in [`AttackReport::cost_unit`]s.
    pub server_cost: u64,
    /// Unit of [`AttackReport::server_cost`] (pinned octets, table
    /// octets, tree nodes, acks extorted, buffered octets, ...).
    pub cost_unit: &'static str,
    /// Server cost per attacker octet (0 when the attacker sent nothing).
    pub amplification: u64,
    /// The server's defensive reaction, in the same taxonomy as the
    /// conformance probes.
    pub reaction: Reaction,
    /// `true` when the server reacted at all (any non-ignore reaction).
    pub defended: bool,
}

impl AttackReport {
    /// Assembles a report, deriving `amplification` and `defended`.
    pub fn new(
        vector: AttackVector,
        attacker_frames: u64,
        attacker_octets: u64,
        server_cost: u64,
        cost_unit: &'static str,
        reaction: Reaction,
    ) -> AttackReport {
        AttackReport {
            vector,
            attacker_frames,
            attacker_octets,
            server_cost,
            cost_unit,
            amplification: server_cost.checked_div(attacker_octets).unwrap_or(0),
            reaction,
            defended: reaction != Reaction::Ignored,
        }
    }

    /// Folds a legacy slow-receiver engagement into the unified schema.
    /// The slow-receiver's cost is the response octets it pinned in the
    /// server's send queue.
    pub fn from_slow_receiver(r: &SlowReceiverReport, reaction: Reaction) -> AttackReport {
        AttackReport::new(
            AttackVector::SlowRead,
            0,
            r.attacker_octets,
            r.pinned_octets,
            "pinned octets",
            reaction,
        )
    }

    /// Folds a legacy table-thrash engagement: the cost is the octets
    /// the victim's HPACK encoder table ballooned to.
    pub fn from_table_thrash(r: &TableThrashReport, octets_sent: u64) -> AttackReport {
        AttackReport::new(
            AttackVector::TableThrash,
            u64::from(r.requests),
            octets_sent,
            r.encoder_table_octets,
            "table octets",
            Reaction::Ignored,
        )
    }

    /// Folds a legacy priority-churn engagement: the cost is the idle
    /// nodes the victim's dependency tree retains.
    pub fn from_priority_churn(r: &ChurnReport) -> AttackReport {
        AttackReport::new(
            AttackVector::PriorityChurn,
            r.frames_sent,
            r.attacker_octets,
            r.tree_nodes as u64,
            "tree nodes",
            Reaction::Ignored,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplification_is_checked_division() {
        let r = AttackReport::new(
            AttackVector::SlowRead,
            1,
            0,
            1_000_000,
            "pinned octets",
            Reaction::Ignored,
        );
        assert_eq!(r.amplification, 0, "zero attacker octets never divides");
        let r = AttackReport::new(
            AttackVector::SlowRead,
            1,
            500,
            1_000_000,
            "pinned octets",
            Reaction::Goaway,
        );
        assert_eq!(r.amplification, 2_000);
        assert!(r.defended);
    }

    #[test]
    fn legacy_reports_fold_into_the_schema() {
        let slow = SlowReceiverReport {
            attacker_octets: 400,
            pinned_octets: 2_000_000,
            amplification: 5_000,
            leaked_octets: 8,
        };
        let folded = AttackReport::from_slow_receiver(&slow, Reaction::Ignored);
        assert_eq!(folded.vector, AttackVector::SlowRead);
        assert_eq!(folded.amplification, 5_000);
        assert!(!folded.defended);

        let churn = ChurnReport {
            frames_sent: 147,
            attacker_octets: 2_097,
            tree_nodes: 64,
            tree_nodes_after_prune: 0,
        };
        let folded = AttackReport::from_priority_churn(&churn);
        assert_eq!(folded.server_cost, 64);
        assert_eq!(folded.cost_unit, "tree nodes");

        let thrash = TableThrashReport {
            announced_table_size: 1 << 26,
            encoder_table_octets: 12_000,
            requests: 48,
        };
        let folded = AttackReport::from_table_thrash(&thrash, 3_000);
        assert_eq!(folded.attacker_frames, 48);
        assert_eq!(folded.amplification, 4);
    }
}
