//! # h2attack — malicious clients, a robustness matrix, and a detector
//!
//! Section VI of *"Are HTTP/2 Servers Ready Yet?"* closes by warning
//! that the protocol's new machinery — flow control, CONTINUATION,
//! SETTINGS, HPACK, priorities — is dual-use. This crate extends the
//! paper's Table III methodology from *conformance* quirks to
//! *robustness* quirks, in three parts:
//!
//! 1. [`vectors`]: a seedable malicious-client generator. Seven attack
//!    vectors (rapid reset, CONTINUATION flood, slow read, slow POST,
//!    SETTINGS flood, HPACK table thrash, priority churn) drive the
//!    deterministic simulator against any [`h2scope::Target`], each run
//!    a pure function of `(target, seed)`.
//! 2. [`matrix`]: the per-profile robustness quirk matrix — which
//!    servers bound each abuse vector, and how they react when the
//!    bound is crossed — built on the `h2scope::probes::abuse` suite.
//! 3. [`detect`]: an online event-sequence detector that consumes
//!    `h2obs` frame traces and labels each connection benign or
//!    attacked (with the vector), evaluated by precision/recall on
//!    mixed benign+attack campaigns.
//!
//! The three legacy `h2dos` experiments fold into the unified
//! [`AttackReport`] schema via `From` conversions, so `repro abuse`
//! reports every vector — old and new — in one table.
//!
//! ```
//! use h2attack::{run, AttackVector};
//! use h2scope::Target;
//! use h2server::{ServerProfile, SiteSpec};
//!
//! let victim = Target::testbed(ServerProfile::rfc7540(), SiteSpec::benchmark());
//! let report = run(AttackVector::SlowRead, &victim, 7);
//! // The RFC reference mounts no defense: the bodies stay pinned.
//! assert!(!report.defended);
//! assert_eq!(report.server_cost, 1_048_572);
//! assert_eq!(report.amplification, 6_204);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detect;
pub mod matrix;
pub mod report;
pub mod vectors;

pub use detect::{ConfusionMatrix, Detector};
pub use matrix::{robustness_matrix, RobustnessRow};
pub use report::AttackReport;
pub use vectors::{run, AttackVector};
