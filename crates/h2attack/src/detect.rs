//! The online event-sequence detector.
//!
//! Consumes `h2obs` frame-level site traces — the same taps the
//! campaign observability layer already records — and labels each
//! connection benign or attacked, with the vector. The detector is a
//! rule cascade over client-side features: what the client *sent* and
//! *when*, never what the server did, because a defended attack (the
//! server GOAWAYs early) must still be labeled an attack.
//!
//! Thresholds sit an order of magnitude above anything a benign page
//! load produces (a benign client sends zero CONTINUATION, RST_STREAM
//! or PRIORITY frames, one SETTINGS frame, and paces DATA by the link,
//! not by tens of seconds), so precision/recall on mixed campaigns is
//! 1.0 by construction — the pinned fixture test asserts ≥ 0.95 to
//! leave room for future traffic classes.

use serde::{Deserialize, Serialize};

use h2obs::SiteTrace;

use crate::vectors::AttackVector;

/// Wire frame kinds the features key on.
const DATA: u8 = 0x0;
const HEADERS: u8 = 0x1;
const PRIORITY: u8 = 0x2;
const RST_STREAM: u8 = 0x3;
const SETTINGS: u8 = 0x4;
const CONTINUATION: u8 = 0x9;

/// Rule thresholds. Campaign attack volumes (see `vectors`) exceed
/// every threshold several-fold; benign page loads stay under all of
/// them by at least the same margin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detector {
    /// Client CONTINUATION frames at or above this ⇒ continuation flood.
    pub continuation_frames: u64,
    /// Client RST_STREAM frames at or above this ⇒ rapid reset.
    pub rst_frames: u64,
    /// Client SETTINGS frames at or above this ⇒ settings flood.
    pub settings_frames: u64,
    /// Client PRIORITY frames at or above this ⇒ priority churn.
    pub priority_frames: u64,
    /// A quiet gap before a client DATA frame at or above this (ns)
    /// ⇒ slow POST.
    pub data_gap_nanos: u64,
    /// Connection lifetime at or above this (ns) without a DATA
    /// trickle ⇒ slow read.
    pub stall_nanos: u64,
    /// Client HEADERS frames at or above this ⇒ table thrash.
    pub headers_frames: u64,
}

impl Default for Detector {
    fn default() -> Detector {
        Detector {
            continuation_frames: 2,
            rst_frames: 8,
            settings_frames: 16,
            priority_frames: 8,
            data_gap_nanos: 2_000_000_000,
            stall_nanos: 20_000_000_000,
            headers_frames: 16,
        }
    }
}

impl Detector {
    /// Classifies one connection trace: `None` is benign, `Some(v)` is
    /// an attack labeled with its vector. Rules are ordered most- to
    /// least-specific so overlapping features (a rapid-reset run also
    /// sends many HEADERS) resolve to the sharper signal.
    pub fn classify(&self, trace: &SiteTrace) -> Option<AttackVector> {
        if trace.sent_count(CONTINUATION) >= self.continuation_frames {
            return Some(AttackVector::ContinuationFlood);
        }
        if trace.sent_count(RST_STREAM) >= self.rst_frames {
            return Some(AttackVector::RapidReset);
        }
        if trace.sent_count(SETTINGS) >= self.settings_frames {
            return Some(AttackVector::SettingsFlood);
        }
        if trace.sent_count(PRIORITY) >= self.priority_frames {
            return Some(AttackVector::PriorityChurn);
        }
        if trace.max_gap_before_send_nanos(DATA) >= self.data_gap_nanos {
            return Some(AttackVector::SlowPost);
        }
        if trace.duration_nanos() >= self.stall_nanos {
            return Some(AttackVector::SlowRead);
        }
        if trace.sent_count(HEADERS) >= self.headers_frames {
            return Some(AttackVector::TableThrash);
        }
        if trace.dropped > 0 {
            // The ring wrapped: more events than any benign exchange
            // produces. Attribute to the busiest abuse signal present.
            let counts = [
                (trace.sent_count(RST_STREAM), AttackVector::RapidReset),
                (
                    trace.sent_count(CONTINUATION),
                    AttackVector::ContinuationFlood,
                ),
                (trace.sent_count(SETTINGS), AttackVector::SettingsFlood),
                (trace.sent_count(PRIORITY), AttackVector::PriorityChurn),
                (trace.sent_count(HEADERS), AttackVector::TableThrash),
            ];
            // max_by_key takes the last maximum; iterate so the first
            // (most specific) wins ties instead.
            let mut best = counts[0];
            for c in &counts[1..] {
                if c.0 > best.0 {
                    best = *c;
                }
            }
            return Some(best.1);
        }
        None
    }
}

/// Detector evaluation against ground truth, accumulated over a mixed
/// campaign. "Positive" means attacked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Attacked connections flagged as attacked.
    pub true_positives: u64,
    /// Benign connections flagged as attacked.
    pub false_positives: u64,
    /// Benign connections passed as benign.
    pub true_negatives: u64,
    /// Attacked connections passed as benign.
    pub false_negatives: u64,
    /// Among true positives, how many carried the correct vector label.
    pub vector_labels_correct: u64,
}

impl ConfusionMatrix {
    /// Scores one connection: `truth`/`verdict` are the injected and
    /// detected vectors (`None` = benign).
    pub fn record(&mut self, truth: Option<AttackVector>, verdict: Option<AttackVector>) {
        match (truth, verdict) {
            (Some(t), Some(v)) => {
                self.true_positives = self.true_positives.saturating_add(1);
                if t == v {
                    self.vector_labels_correct = self.vector_labels_correct.saturating_add(1);
                }
            }
            (None, Some(_)) => self.false_positives = self.false_positives.saturating_add(1),
            (None, None) => self.true_negatives = self.true_negatives.saturating_add(1),
            (Some(_), None) => self.false_negatives = self.false_negatives.saturating_add(1),
        }
    }

    /// TP / (TP + FP); 1.0 when nothing was flagged (vacuous precision).
    pub fn precision(&self) -> f64 {
        let flagged = self.true_positives.saturating_add(self.false_positives);
        if flagged == 0 {
            return 1.0;
        }
        self.true_positives as f64 / flagged as f64
    }

    /// TP / (TP + FN); 1.0 when nothing was attacked (vacuous recall).
    pub fn recall(&self) -> f64 {
        let attacked = self.true_positives.saturating_add(self.false_negatives);
        if attacked == 0 {
            return 1.0;
        }
        self.true_positives as f64 / attacked as f64
    }

    /// Among true positives, the fraction labeled with the right vector.
    pub fn label_accuracy(&self) -> f64 {
        if self.true_positives == 0 {
            return 1.0;
        }
        self.vector_labels_correct as f64 / self.true_positives as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2obs::{EventKind, TraceEvent};

    fn trace(events: Vec<(u64, EventKind)>) -> SiteTrace {
        SiteTrace {
            site: 0,
            events: events
                .into_iter()
                .map(|(at_nanos, kind)| TraceEvent { at_nanos, kind })
                .collect(),
            dropped: 0,
        }
    }

    #[test]
    fn benign_page_load_passes() {
        // SETTINGS, three GETs, responses, a couple of WINDOW_UPDATEs.
        let mut events = vec![(0, EventKind::Send(0x4)), (1_000, EventKind::Recv(0x4))];
        for k in 0..3u64 {
            events.push((2_000 + k, EventKind::Send(0x1)));
            events.push((5_000 + k, EventKind::Recv(0x1)));
            events.push((6_000 + k, EventKind::Recv(0x0)));
            events.push((7_000 + k, EventKind::Send(0x8)));
        }
        assert_eq!(Detector::default().classify(&trace(events)), None);
    }

    #[test]
    fn each_vector_signature_is_recognized() {
        let d = Detector::default();
        let rst: Vec<_> = (0..10).map(|k| (k, EventKind::Send(0x3))).collect();
        assert_eq!(d.classify(&trace(rst)), Some(AttackVector::RapidReset));

        let cont = vec![
            (0, EventKind::Send(0x1)),
            (1, EventKind::Send(0x9)),
            (2, EventKind::Send(0x9)),
        ];
        assert_eq!(
            d.classify(&trace(cont)),
            Some(AttackVector::ContinuationFlood)
        );

        let settings: Vec<_> = (0..20).map(|k| (k, EventKind::Send(0x4))).collect();
        assert_eq!(
            d.classify(&trace(settings)),
            Some(AttackVector::SettingsFlood)
        );

        let prio: Vec<_> = (0..9).map(|k| (k, EventKind::Send(0x2))).collect();
        assert_eq!(d.classify(&trace(prio)), Some(AttackVector::PriorityChurn));

        let post = vec![
            (0, EventKind::Send(0x1)),
            (10_000_000_000, EventKind::Send(0x0)),
        ];
        assert_eq!(d.classify(&trace(post)), Some(AttackVector::SlowPost));

        let read = vec![
            (0, EventKind::Send(0x1)),
            (90_000_000_000, EventKind::Send(0x6)),
        ];
        assert_eq!(d.classify(&trace(read)), Some(AttackVector::SlowRead));

        let thrash: Vec<_> = (0..20).map(|k| (k, EventKind::Send(0x1))).collect();
        assert_eq!(d.classify(&trace(thrash)), Some(AttackVector::TableThrash));
    }

    #[test]
    fn ring_wrap_is_hyperactivity() {
        let mut t = trace((0..12).map(|k| (k, EventKind::Send(0x3))).collect());
        t.events.truncate(4); // only 4 RSTs survive the wrap...
        t.dropped = 500; // ...but the drop count betrays the volume
        assert_eq!(
            Detector::default().classify(&t),
            Some(AttackVector::RapidReset)
        );
    }

    #[test]
    fn confusion_matrix_scores() {
        let mut m = ConfusionMatrix::default();
        m.record(
            Some(AttackVector::RapidReset),
            Some(AttackVector::RapidReset),
        );
        m.record(Some(AttackVector::SlowPost), Some(AttackVector::SlowRead));
        m.record(Some(AttackVector::SlowRead), None);
        m.record(None, None);
        m.record(None, Some(AttackVector::TableThrash));
        assert_eq!(m.true_positives, 2);
        assert_eq!(m.false_negatives, 1);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.true_negatives, 1);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.label_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_campaign_is_vacuously_perfect() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.label_accuracy(), 1.0);
    }
}
