//! Property-based guarantees for the impairment layer: fault schedules
//! are pure functions of `(seed, site, attempt)`, and a zero-rate
//! impairment is a *strict* no-op — a pipe driven through it produces
//! byte- and time-identical arrivals to an unimpaired pipe.

use h2fault::{FaultPlan, FaultProfile, ImpairmentSpec};
use netsim::link::LinkSpec;
use netsim::time::{SimDuration, SimTime};
use netsim::{ByteEndpoint, Pipe};
use proptest::prelude::*;

/// Echoes every segment back with a fixed processing delay.
struct Echo {
    delay: SimDuration,
}

impl ByteEndpoint for Echo {
    fn on_connect(&mut self, _now: SimTime, out: &mut Vec<u8>) {
        out.extend_from_slice(b"greetings");
    }
    fn on_bytes(&mut self, _now: SimTime, bytes: &[u8], out: &mut Vec<u8>) {
        out.extend_from_slice(bytes);
    }
    fn processing_delay(&self) -> SimDuration {
        self.delay
    }
}

fn arb_profile() -> impl Strategy<Value = FaultProfile> {
    prop_oneof![
        Just(FaultProfile::lossy()),
        Just(FaultProfile::jittery()),
        Just(FaultProfile::flaky()),
        Just(FaultProfile::byzantine()),
        Just(FaultProfile::chaos()),
    ]
}

fn arb_link() -> impl Strategy<Value = LinkSpec> {
    (
        1u64..200,
        0u64..20,
        prop::option::of(1u64..1_000),
        0.0f64..0.3,
    )
        .prop_map(|(delay_ms, jitter_ms, mbps, loss)| LinkSpec {
            delay: SimDuration::from_millis(delay_ms),
            jitter: SimDuration::from_millis(jitter_ms),
            bandwidth_bps: mbps.map(|m| m * 1_000_000),
            loss,
            retransmit_penalty: SimDuration::from_millis(delay_ms * 2),
        })
}

proptest! {
    /// Same seed, same site, same attempt — same injection, no matter how
    /// many plans are constructed or in which order sites are visited.
    /// This is the property that makes faulted campaigns replayable at
    /// any thread count.
    #[test]
    fn injection_is_a_pure_function_of_seed_site_attempt(
        profile in arb_profile(),
        seed in any::<u64>(),
        site in 0u64..1_000_000,
        attempt in 0u32..4,
    ) {
        let a = FaultPlan::new(profile, seed).injection(site, attempt);
        let b = FaultPlan::new(profile, seed).injection(site, attempt);
        prop_assert_eq!(a.impairment, b.impairment);
        prop_assert_eq!(a.byzantine, b.byzantine);
        prop_assert_eq!(a.seed_salt, b.seed_salt);
    }

    /// A zero-loss profile derives a no-op injection for every site: no
    /// link change, no transport faults, no byzantine behavior.
    #[test]
    fn zero_loss_profile_injects_nothing(
        seed in any::<u64>(),
        site in 0u64..1_000_000,
        attempt in 0u32..4,
        link in arb_link(),
    ) {
        let plan = FaultPlan::new(FaultProfile::uniform_loss(0.0), seed);
        let injection = plan.injection(site, attempt);
        prop_assert!(injection.is_noop());
        prop_assert_eq!(injection.impairment.apply(link), link);
        prop_assert!(injection.impairment.pipe_faults().is_none());
    }

    /// The no-op impairment is *strict*: a pipe whose link passed through
    /// `ImpairmentSpec::default().apply` and whose faults are the derived
    /// (empty) `PipeFaults` delivers arrivals identical in both payload
    /// and virtual timing to an untouched pipe — even on lossy, jittered,
    /// bandwidth-limited links where every RNG draw matters.
    #[test]
    fn noop_impairment_leaves_the_pipe_bit_identical(
        link in arb_link(),
        seed in any::<u64>(),
        delay_ms in 0u64..50,
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..200), 1..6),
    ) {
        let noop = ImpairmentSpec::default();
        let mut plain = Pipe::connect(
            Echo { delay: SimDuration::from_millis(delay_ms) }, link, seed);
        let mut impaired = Pipe::connect(
            Echo { delay: SimDuration::from_millis(delay_ms) }, noop.apply(link), seed);
        impaired.set_faults(noop.pipe_faults());
        for payload in &payloads {
            plain.client_send(payload);
            impaired.client_send(payload);
            let a = plain.run_to_quiescence();
            let b = impaired.run_to_quiescence();
            prop_assert_eq!(a, b);
            prop_assert_eq!(plain.now(), impaired.now());
        }
    }

    /// Retry attempts re-salt the link randomness: a retry against the
    /// same site never replays the identical schedule (salt differs), yet
    /// remains deterministic.
    #[test]
    fn retries_are_resalted_but_deterministic(
        profile in arb_profile(),
        seed in any::<u64>(),
        site in 0u64..1_000_000,
    ) {
        let plan = FaultPlan::new(profile, seed);
        let first = plan.injection(site, 0);
        let retry = plan.injection(site, 1);
        prop_assert_eq!(first.seed_salt, 0, "attempt 0 keeps the site's own seed");
        prop_assert_ne!(retry.seed_salt, 0, "retries must resample link randomness");
        prop_assert_eq!(retry.seed_salt, plan.injection(site, 1).seed_salt);
    }
}
