//! # h2fault — deterministic fault injection for the scan pipeline
//!
//! The paper's wild-scan tables are full of degraded outcomes: "no
//! response" rows in §V-D, sites that never finish negotiation, servers
//! that stall mid-probe. A perfect simulated network cannot *measure*
//! those populations — it can only fake them with quirk flags. This crate
//! supplies the missing adversity:
//!
//! * [`ImpairmentSpec`] — extra latency, jitter, loss, bandwidth caps and
//!   scheduled connection drops layered onto a [`netsim::LinkSpec`] /
//!   [`netsim::PipeFaults`]. A default spec is a strict no-op.
//! * [`ByzantineSpec`] — server-side misbehavior (garbage preface,
//!   handshake stall, truncated frames, trickled DATA, mid-stream TCP
//!   reset) that `h2server` applies when installed on a behavior matrix.
//! * [`FaultProfile`] — named, CLI-selectable intensity presets.
//! * [`FaultPlan`] — the deterministic materialization: faults for one
//!   probe are a pure function of `(campaign seed, site index, attempt)`,
//!   so campaigns replay bit-identically at any thread count.
//! * [`RetryPolicy`] — bounded retry with exponential backoff and
//!   deterministic jitter, all in simulated time.
//!
//! Everything here is side-effect free; `h2scope`/`bench` decide how the
//! injections are wired into targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use netsim::{LinkSpec, PipeFaults, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// SplitMix64: the stateless mixing function every fault derivation is
/// built from (one u64 in, one well-scrambled u64 out).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a mixed u64 onto the unit interval `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Extra network impairment layered onto one probe connection.
///
/// The default spec is a **strict no-op**: applying it to a link returns
/// the link bit-for-bit unchanged (same RNG consumption downstream), and
/// its [`PipeFaults`] are empty.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ImpairmentSpec {
    /// Added one-way propagation delay.
    pub extra_delay: SimDuration,
    /// Added uniform jitter per transmission.
    pub extra_jitter: SimDuration,
    /// Added loss probability (manifests as retransmission delay).
    pub extra_loss: f64,
    /// Cap on the link's serialization bandwidth, bits per second.
    pub bandwidth_cap_bps: Option<u64>,
    /// Cut the connection after this many octets total.
    pub drop_after_bytes: Option<u64>,
    /// Cut the connection at this time after connect.
    pub drop_after: Option<SimDuration>,
    /// Black-hole every delivery from the first byte: the connection
    /// looks open forever but nothing arrives.
    pub stalled: bool,
}

impl ImpairmentSpec {
    /// `true` when applying this spec changes nothing.
    pub fn is_noop(&self) -> bool {
        *self == ImpairmentSpec::default()
    }

    /// Layers the impairment onto a link. Identity for a default spec.
    pub fn apply(&self, link: LinkSpec) -> LinkSpec {
        let bandwidth_bps = match (link.bandwidth_bps, self.bandwidth_cap_bps) {
            (Some(b), Some(cap)) => Some(b.min(cap)),
            (None, cap) => cap,
            (b, None) => b,
        };
        LinkSpec {
            delay: link.delay + self.extra_delay,
            jitter: link.jitter + self.extra_jitter,
            bandwidth_bps,
            loss: (link.loss + self.extra_loss).min(0.99),
            retransmit_penalty: link.retransmit_penalty,
        }
    }

    /// Composes two impairments into one: delays, jitter and loss add;
    /// bandwidth caps and cut points take the stricter of the two; a
    /// stall from either side stalls the composition. Composing with the
    /// default spec is the identity, so layering "no extra impairment"
    /// onto a plan changes nothing. Mixed abuse campaigns use this to
    /// run *benign-but-degraded* traffic — an honest client on a bad
    /// link, which a naive rate detector would misflag — on top of
    /// whatever baseline impairment the campaign already injects.
    #[must_use]
    pub fn compose(&self, other: &ImpairmentSpec) -> ImpairmentSpec {
        let min_opt = |a: Option<u64>, b: Option<u64>| match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, None) => x,
            (None, y) => y,
        };
        ImpairmentSpec {
            extra_delay: self.extra_delay.saturating_add(other.extra_delay),
            extra_jitter: self.extra_jitter.saturating_add(other.extra_jitter),
            extra_loss: (self.extra_loss + other.extra_loss).min(0.99),
            bandwidth_cap_bps: min_opt(self.bandwidth_cap_bps, other.bandwidth_cap_bps),
            drop_after_bytes: min_opt(self.drop_after_bytes, other.drop_after_bytes),
            drop_after: match (self.drop_after, other.drop_after) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            },
            stalled: self.stalled || other.stalled,
        }
    }

    /// The transport-level faults this impairment arms on a `Pipe`.
    pub fn pipe_faults(&self) -> PipeFaults {
        PipeFaults {
            drop_after_bytes: self.drop_after_bytes,
            drop_at: self.drop_after.map(|d| SimTime::ZERO + d),
            stall_after_bytes: if self.stalled { Some(0) } else { None },
        }
    }
}

/// Server-side misbehavior injected into the `h2server` engine — the
/// population a hardened scanner must classify rather than hang on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ByzantineSpec {
    /// The greeting is garbage that cannot parse as HTTP/2 frames.
    pub garbage_preface: bool,
    /// The server accepts the connection but never says anything.
    pub handshake_stall: bool,
    /// Output is cut mid-frame once this many octets have been emitted;
    /// the server goes silent afterwards.
    pub truncate_after: Option<u64>,
    /// DATA is trickled: at most this many payload octets per exchange.
    pub trickle_data: Option<usize>,
    /// Extra processing delay charged per trickled chunk.
    pub trickle_delay: SimDuration,
    /// Demand a TCP reset once this many octets have been emitted.
    pub reset_after_bytes: Option<u64>,
}

impl ByzantineSpec {
    /// `true` when no byzantine behavior is armed.
    pub fn is_noop(&self) -> bool {
        *self == ByzantineSpec::default()
    }
}

/// Everything injected into one probe attempt against one site.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultInjection {
    /// Link/transport impairment.
    pub impairment: ImpairmentSpec,
    /// Server misbehavior (no-op spec = conforming server).
    pub byzantine: ByzantineSpec,
    /// XORed into the target's connection seed so retries resample link
    /// randomness instead of replaying the identical unlucky trace.
    pub seed_salt: u64,
}

impl FaultInjection {
    /// `true` when this attempt runs completely unimpaired.
    pub fn is_noop(&self) -> bool {
        self.impairment.is_noop() && self.byzantine.is_noop()
    }
}

/// A named fault-intensity preset, selectable as `repro --faults <name>`.
///
/// The fields are *rates and scales*; [`FaultPlan`] turns them into
/// concrete per-(site, attempt) injections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Preset name (what `--faults` parses).
    pub name: &'static str,
    /// Mean extra loss probability per impaired connection.
    pub loss: f64,
    /// Maximum extra jitter, milliseconds.
    pub jitter_ms: u64,
    /// Maximum extra one-way delay, milliseconds.
    pub delay_ms: u64,
    /// Probability a connection is cut at a scheduled byte/time.
    pub drop_rate: f64,
    /// Probability a connection is a stalled-forever black hole.
    pub stall_rate: f64,
    /// Probability the server behaves byzantinely.
    pub byzantine_rate: f64,
    /// Per-connection probe deadline in simulated time.
    pub deadline: SimDuration,
    /// Retry/backoff policy for failed probes.
    pub retry: RetryPolicy,
}

impl FaultProfile {
    /// No faults at all; scans take the plain (bit-identical) path.
    pub fn none() -> FaultProfile {
        FaultProfile {
            name: "none",
            loss: 0.0,
            jitter_ms: 0,
            delay_ms: 0,
            drop_rate: 0.0,
            stall_rate: 0.0,
            byzantine_rate: 0.0,
            deadline: SimDuration::from_secs(5),
            retry: RetryPolicy::no_retry(),
        }
    }

    /// Elevated loss with mild jitter — the mobile-ish path.
    pub fn lossy() -> FaultProfile {
        FaultProfile {
            name: "lossy",
            loss: 0.02,
            jitter_ms: 2,
            ..FaultProfile::default_faulted("lossy")
        }
    }

    /// Heavy jitter and added delay, no loss.
    pub fn jittery() -> FaultProfile {
        FaultProfile {
            name: "jittery",
            jitter_ms: 20,
            delay_ms: 30,
            ..FaultProfile::default_faulted("jittery")
        }
    }

    /// Loss plus scheduled connection drops and occasional stalls.
    pub fn flaky() -> FaultProfile {
        FaultProfile {
            name: "flaky",
            loss: 0.015,
            jitter_ms: 3,
            drop_rate: 0.12,
            stall_rate: 0.05,
            ..FaultProfile::default_faulted("flaky")
        }
    }

    /// Byzantine servers on an otherwise clean network.
    pub fn byzantine() -> FaultProfile {
        FaultProfile {
            name: "byzantine",
            byzantine_rate: 0.25,
            ..FaultProfile::default_faulted("byzantine")
        }
    }

    /// Everything at once.
    pub fn chaos() -> FaultProfile {
        FaultProfile {
            name: "chaos",
            loss: 0.02,
            jitter_ms: 8,
            delay_ms: 10,
            drop_rate: 0.08,
            stall_rate: 0.04,
            byzantine_rate: 0.12,
            ..FaultProfile::default_faulted("chaos")
        }
    }

    /// A custom uniform-loss profile (benchmark sweeps).
    pub fn uniform_loss(loss: f64) -> FaultProfile {
        FaultProfile {
            name: "loss",
            loss,
            ..FaultProfile::default_faulted("loss")
        }
    }

    fn default_faulted(name: &'static str) -> FaultProfile {
        FaultProfile {
            name,
            loss: 0.0,
            jitter_ms: 0,
            delay_ms: 0,
            drop_rate: 0.0,
            stall_rate: 0.0,
            byzantine_rate: 0.0,
            deadline: SimDuration::from_secs(5),
            retry: RetryPolicy::standard(),
        }
    }

    /// Parses a `--faults` argument.
    pub fn parse(name: &str) -> Option<FaultProfile> {
        Some(match name {
            "none" => FaultProfile::none(),
            "lossy" => FaultProfile::lossy(),
            "jittery" => FaultProfile::jittery(),
            "flaky" => FaultProfile::flaky(),
            "byzantine" => FaultProfile::byzantine(),
            "chaos" => FaultProfile::chaos(),
            _ => return None,
        })
    }

    /// The named presets, for `--help` text.
    pub fn names() -> [&'static str; 6] {
        ["none", "lossy", "jittery", "flaky", "byzantine", "chaos"]
    }

    /// `true` when this profile injects nothing (scans may take the
    /// plain, bit-identical path).
    pub fn is_none(&self) -> bool {
        self.loss == 0.0
            && self.jitter_ms == 0
            && self.delay_ms == 0
            && self.drop_rate == 0.0
            && self.stall_rate == 0.0
            && self.byzantine_rate == 0.0
    }
}

/// Bounded retry with exponential backoff, in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimDuration,
    /// Exponential growth factor per retry.
    pub multiplier: u32,
    /// Cap on a single backoff interval.
    pub max_backoff: SimDuration,
}

impl RetryPolicy {
    /// One attempt, no retries.
    pub fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: SimDuration::ZERO,
            multiplier: 2,
            max_backoff: SimDuration::ZERO,
        }
    }

    /// Three attempts, 500 ms base, doubling, capped at 8 s.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDuration::from_millis(500),
            multiplier: 2,
            max_backoff: SimDuration::from_secs(8),
        }
    }

    /// Backoff before retry number `retry` (1-based), with deterministic
    /// jitter in `[1/2, 1]` of the exponential interval, derived from
    /// `seed` so campaigns replay exactly.
    pub fn backoff(&self, retry: u32, seed: u64) -> SimDuration {
        if retry == 0 {
            return SimDuration::ZERO;
        }
        let factor = u64::from(self.multiplier).saturating_pow(retry.saturating_sub(1));
        let full = self
            .base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
            .max(self.base_backoff.min(self.max_backoff));
        let half = full.as_nanos() / 2;
        let jitter = if half == 0 {
            0
        } else {
            splitmix64(seed ^ u64::from(retry).wrapping_mul(0x5bd1_e995)) % (half + 1)
        };
        SimDuration::from_nanos(half + jitter)
    }
}

/// The deterministic materialization of a [`FaultProfile`] for one
/// campaign: faults are a pure function of `(campaign seed, site index,
/// attempt)` and nothing else — never thread identity or wall time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    profile: FaultProfile,
    seed: u64,
}

impl FaultPlan {
    /// A plan for `profile` keyed by `seed`.
    pub fn new(profile: FaultProfile, seed: u64) -> FaultPlan {
        FaultPlan { profile, seed }
    }

    /// The profile this plan materializes.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// The campaign seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The injection for probe `attempt` (0-based) against site `site`.
    pub fn injection(&self, site: u64, attempt: u32) -> FaultInjection {
        let p = &self.profile;
        let mut h = splitmix64(
            self.seed
                ^ splitmix64(site.wrapping_mul(0x9e37_79b9).wrapping_add(0xfa_017))
                ^ u64::from(attempt).wrapping_mul(0xc2b2_ae35),
        );
        let mut next = move || {
            h = splitmix64(h);
            h
        };

        let mut imp = ImpairmentSpec::default();
        if p.loss > 0.0 {
            // 0.5–1.5× the profile mean, per connection.
            imp.extra_loss = (p.loss * (0.5 + unit(next()))).min(0.9);
        }
        if p.jitter_ms > 0 {
            imp.extra_jitter =
                SimDuration::from_micros((unit(next()) * p.jitter_ms as f64 * 1_000.0) as u64);
        }
        if p.delay_ms > 0 {
            imp.extra_delay =
                SimDuration::from_micros((unit(next()) * p.delay_ms as f64 * 1_000.0) as u64);
        }
        if p.drop_rate > 0.0 && unit(next()) < p.drop_rate {
            if unit(next()) < 0.5 {
                imp.drop_after_bytes = Some(1_024 + next() % 65_536);
            } else {
                imp.drop_after = Some(SimDuration::from_millis(50 + next() % 1_000));
            }
        }
        if p.stall_rate > 0.0 && unit(next()) < p.stall_rate {
            imp.stalled = true;
        }

        let mut byz = ByzantineSpec::default();
        if p.byzantine_rate > 0.0 && unit(next()) < p.byzantine_rate {
            match next() % 5 {
                0 => byz.garbage_preface = true,
                1 => byz.handshake_stall = true,
                2 => byz.truncate_after = Some(64 + next() % 4_096),
                3 => {
                    byz.trickle_data = Some(64 + (next() % 448) as usize);
                    byz.trickle_delay = SimDuration::from_millis(200 + next() % 600);
                }
                _ => byz.reset_after_bytes = Some(256 + next() % 32_768),
            }
        }

        let seed_salt = if attempt == 0 { 0 } else { next() | 1 };
        FaultInjection {
            impairment: imp,
            byzantine: byz,
            seed_salt,
        }
    }
}

/// A deterministic mid-campaign crash, for exercising the persistence
/// layer's resume path: once `after_rows` per-site records have been
/// durably appended to the campaign record, the scan stops claiming work
/// and the process abandons the campaign *without* finalizing it — the
/// same on-disk state a `kill -9` leaves behind, minus the timing races.
/// Pairing a kill point with `--resume` lets tests and CI verify the
/// resume invariant (final record byte-identical to an uninterrupted
/// run) without actually killing anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillPoint {
    /// Stop claiming new sites once this many rows are persisted.
    pub after_rows: u64,
}

impl KillPoint {
    /// A kill point firing after `n` persisted rows.
    pub fn after(n: u64) -> KillPoint {
        KillPoint { after_rows: n }
    }

    /// Three seeded kill points spread across a campaign of `total`
    /// sites — early, midway, and one row short of complete — the spots
    /// where resume bookkeeping is most likely to be wrong. `seed`
    /// perturbs the early point so different campaigns don't all crash
    /// on the same row.
    pub fn seeded(total: u64, seed: u64) -> [KillPoint; 3] {
        let early_max = (total / 4).max(1);
        let early = 1 + splitmix64(seed ^ 0x4b11) % early_max;
        [
            KillPoint::after(early),
            KillPoint::after((total / 2).max(1)),
            KillPoint::after(total.saturating_sub(1).max(1)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_impairment_is_identity_on_links() {
        let links = [
            LinkSpec::lan(),
            LinkSpec::wan(40),
            LinkSpec::mobile(30, 0.08),
            LinkSpec {
                bandwidth_bps: None,
                ..LinkSpec::wan(5)
            },
        ];
        let noop = ImpairmentSpec::default();
        assert!(noop.is_noop());
        for link in links {
            assert_eq!(noop.apply(link), link);
        }
        assert!(noop.pipe_faults().is_none());
    }

    #[test]
    fn impairment_composes_onto_the_link() {
        let imp = ImpairmentSpec {
            extra_delay: SimDuration::from_millis(10),
            extra_jitter: SimDuration::from_millis(2),
            extra_loss: 0.05,
            bandwidth_cap_bps: Some(1_000_000),
            ..ImpairmentSpec::default()
        };
        let out = imp.apply(LinkSpec::wan(20));
        assert_eq!(out.delay, SimDuration::from_millis(30));
        assert_eq!(out.bandwidth_bps, Some(1_000_000));
        assert!((out.loss - 0.05).abs() < 1e-12);
    }

    #[test]
    fn composing_with_the_default_is_identity() {
        let imp = ImpairmentSpec {
            extra_delay: SimDuration::from_millis(10),
            extra_loss: 0.05,
            drop_after_bytes: Some(4_096),
            ..ImpairmentSpec::default()
        };
        assert_eq!(imp.compose(&ImpairmentSpec::default()), imp);
        assert_eq!(ImpairmentSpec::default().compose(&imp), imp);
    }

    #[test]
    fn composition_adds_rates_and_takes_stricter_limits() {
        let a = ImpairmentSpec {
            extra_delay: SimDuration::from_millis(10),
            extra_loss: 0.05,
            bandwidth_cap_bps: Some(2_000_000),
            drop_after_bytes: Some(8_192),
            ..ImpairmentSpec::default()
        };
        let b = ImpairmentSpec {
            extra_delay: SimDuration::from_millis(5),
            extra_loss: 0.02,
            bandwidth_cap_bps: Some(1_000_000),
            drop_after: Some(SimDuration::from_secs(2)),
            stalled: true,
            ..ImpairmentSpec::default()
        };
        let c = a.compose(&b);
        assert_eq!(c.extra_delay, SimDuration::from_millis(15));
        assert!((c.extra_loss - 0.07).abs() < 1e-12);
        assert_eq!(c.bandwidth_cap_bps, Some(1_000_000));
        assert_eq!(c.drop_after_bytes, Some(8_192));
        assert_eq!(c.drop_after, Some(SimDuration::from_secs(2)));
        assert!(c.stalled);
        assert_eq!(a.compose(&b), b.compose(&a));
    }

    #[test]
    fn plan_is_a_pure_function_of_seed_site_attempt() {
        let a = FaultPlan::new(FaultProfile::chaos(), 0xfeed);
        let b = FaultPlan::new(FaultProfile::chaos(), 0xfeed);
        for site in 0..200 {
            for attempt in 0..3 {
                assert_eq!(a.injection(site, attempt), b.injection(site, attempt));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::new(FaultProfile::chaos(), 1);
        let b = FaultPlan::new(FaultProfile::chaos(), 2);
        let differs = (0..100).any(|s| a.injection(s, 0) != b.injection(s, 0));
        assert!(differs);
    }

    #[test]
    fn none_profile_injects_nothing() {
        let plan = FaultPlan::new(FaultProfile::none(), 0xdead);
        assert!(FaultProfile::none().is_none());
        for site in 0..50 {
            assert!(plan.injection(site, 0).is_noop());
        }
    }

    #[test]
    fn retries_resample_while_first_attempts_do_not() {
        let plan = FaultPlan::new(FaultProfile::flaky(), 7);
        assert_eq!(plan.injection(3, 0).seed_salt, 0);
        assert_ne!(plan.injection(3, 1).seed_salt, 0);
        assert_ne!(plan.injection(3, 1), plan.injection(3, 2));
    }

    #[test]
    fn profile_parsing_round_trips() {
        for name in FaultProfile::names() {
            let profile = FaultProfile::parse(name).expect("known name");
            assert_eq!(profile.name, name);
        }
        assert!(FaultProfile::parse("tsunami").is_none());
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy::standard();
        let seed = 0x5eed;
        let b1 = policy.backoff(1, seed);
        let b2 = policy.backoff(2, seed);
        assert!(
            b1 >= SimDuration::from_millis(250),
            "at least half the base"
        );
        assert!(b1 <= SimDuration::from_millis(500));
        assert!(b2 >= SimDuration::from_millis(500));
        assert!(b2 <= SimDuration::from_millis(1_000));
        let deep = policy.backoff(30, seed);
        assert!(deep <= SimDuration::from_secs(8), "capped: {deep}");
        // Deterministic for a given (retry, seed).
        assert_eq!(policy.backoff(2, seed), policy.backoff(2, seed));
        assert_ne!(policy.backoff(2, 1), policy.backoff(2, 2));
    }

    #[test]
    fn byzantine_population_appears_at_the_configured_rate() {
        let plan = FaultPlan::new(FaultProfile::byzantine(), 0xabc);
        let n = 2_000;
        let byz = (0..n)
            .filter(|s| !plan.injection(*s, 0).byzantine.is_noop())
            .count();
        let rate = byz as f64 / n as f64;
        assert!((0.18..0.32).contains(&rate), "≈25%: {rate}");
    }
}
