//! # webpop — the synthetic Alexa top-1M population
//!
//! Replaces the live top-1M site list of the paper's two scan campaigns
//! (Jul. 2016 and Jan. 2017) with a deterministic generator calibrated to
//! every aggregate the paper publishes:
//!
//! * Table IV server-family counts (plus the 223/345-name long tail),
//! * Tables V–VII SETTINGS marginals (cell-for-cell),
//! * the §V-D flow-control reaction counts,
//! * the §V-E priority populations (including the 38/46/1,147-site split
//!   between first-frame, last-frame and both orderings),
//! * the §V-F push sites (6, then 15),
//! * the Figure 4/5 per-family HPACK behavior mixtures.
//!
//! Generation is lazy and deterministic: `Population::site(i)` depends
//! only on `(campaign seed, i)`, so a million-site campaign needs no
//! site list in memory and replays identically.
//!
//! ```
//! use webpop::{ExperimentSpec, Population};
//!
//! let population = Population::new(ExperimentSpec::first(), 0.01);
//! let site = population.site(0);
//! let report = h2scope::H2Scope::new().survey(&site.target());
//! assert!(report.negotiation.h2());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod marginals;
pub mod population;
pub mod spec;
pub mod timeline;

pub use marginals::Family;
pub use population::{Population, SiteSample};
pub use spec::{ExperimentSpec, ReactionCounts};
pub use timeline::{interpolate, monthly_series};
