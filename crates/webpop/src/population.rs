//! Deterministic generation of the synthetic top-1M population.
//!
//! Each site is generated independently from `(campaign seed, index)`, so
//! populations of any scale replay bit-identically and sites can be
//! generated lazily during a scan (no multi-gigabyte site list in
//! memory).
//!
//! Calibration uses two mechanisms:
//!
//! * **Quota permutations** — for every published aggregate (Table IV
//!   families, §V-D reaction counts, §V-E priority groups, push sites), a
//!   per-dimension pseudorandom permutation of the index space is cut
//!   into exact scaled quotas. This reproduces even tiny populations (the
//!   31-site GOAWAY group, the 6 push sites) at full scale, and
//!   proportionally at reduced scale.
//! * **Marginal draws** — SETTINGS values are drawn per-site from the
//!   Table V/VI/VII marginals (independently of family, a documented
//!   simplification: the paper does not publish the joint distribution).

use std::sync::Arc;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use h2server::behavior::PriorityMode;
use h2server::{QuirkAction, Resource, ServerProfile, SiteSpec};
use h2wire::{SettingId, Settings};
use netsim::time::SimDuration;
use netsim::{LinkSpec, TlsConfig};

use crate::marginals::{
    draw_non_null, Family, FAMILIES, INITIAL_WINDOW_SIZE, MAX_CONCURRENT_STREAMS, MAX_FRAME_SIZE,
    MAX_HEADER_LIST_SIZE, SERVER_KINDS, UNLIMITED,
};
use crate::spec::ExperimentSpec;

/// One generated site, ready to be probed.
#[derive(Debug, Clone)]
pub struct SiteSample {
    /// Index within the campaign's h2 population.
    pub index: u64,
    /// Server family (Table IV row).
    pub family: Family,
    /// The fully customized server profile, behind an `Arc` so building a
    /// probe [`h2scope::Target`] (and each connection it opens) shares one
    /// immutable copy instead of deep-cloning the behavior spec.
    pub profile: Arc<ServerProfile>,
    /// Content served (shared immutably, like `profile`).
    pub site: Arc<SiteSpec>,
    /// Network path from the scan vantage point.
    pub link: LinkSpec,
}

impl SiteSample {
    /// Builds an `h2scope` probe target for this site.
    pub fn target(&self) -> h2scope::Target {
        h2scope::Target {
            profile: Arc::clone(&self.profile),
            site: Arc::clone(&self.site),
            link: self.link,
            seed: 0xbeef ^ self.index,
            pipe_faults: netsim::PipeFaults::none(),
            patience: None,
            fault_log: h2scope::FaultLog::default(),
            obs: h2scope::Obs::off(),
        }
    }
}

/// The synthetic population for one campaign at a given scale.
#[derive(Debug, Clone)]
pub struct Population {
    spec: ExperimentSpec,
    scale: f64,
}

/// Dimension tags for the quota permutations.
mod dim {
    pub const FAMILY: u64 = 1;
    pub const SMALL_WINDOW: u64 = 2;
    pub const HEADERS_ZERO: u64 = 3;
    pub const ZWU_STREAM: u64 = 4;
    pub const ZWU_CONN: u64 = 5;
    pub const LWU_STREAM: u64 = 6;
    pub const LWU_CONN: u64 = 7;
    pub const PRIORITY: u64 = 8;
    pub const SELF_DEP: u64 = 9;
    pub const PUSH: u64 = 10;
    pub const SETTINGS_NULL: u64 = 11;
    pub const NEGOTIATION: u64 = 13;
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Maps index `i` to its position in a pseudorandom permutation of
/// `0..n`, keyed by `(seed, dimension)`.
///
/// Both the multiplier and the offset of the affine map derive from the
/// dimension: permutations for different dimensions must not be mere
/// shifts of each other, or quota ranges across dimensions would overlap
/// in structured (biased) ways.
fn permuted_position(i: u64, n: u64, dimension: u64, seed: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    let key = splitmix64(seed ^ dimension.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut a = (key % n).max(2) | 1;
    while gcd(a, n) != 1 {
        a = (a + 2) % n.max(3);
        if a < 2 {
            a = 3;
        }
    }
    let b = splitmix64(key ^ 0x5bd1_e995) % n;
    ((u128::from(i) * u128::from(a) + u128::from(b)) % u128::from(n)) as u64
}

/// The shared large-object body (96 KiB — comfortably above the 65,535
/// connection window so Algorithm 1's drain works on any wild site).
///
/// Cached per *thread*, not per process: every site references this body
/// 8 times, and `Bytes` clones bump a reference count, so a process-wide
/// body would have every scan worker hammering one shared cache line.
/// A per-worker copy costs 96 KiB of memory per thread and removes the
/// cross-core refcount traffic entirely; the bytes are identical on
/// every thread, so generated sites don't change.
fn big_body() -> Bytes {
    thread_local! {
        static BODY: Bytes = {
            let body: Vec<u8> = (0..96 * 1024).map(|i| (i % 251) as u8).collect();
            Bytes::from(body)
        };
    }
    BODY.with(Bytes::clone)
}

impl Population {
    /// A population for `spec` at `scale` (1.0 = the full million sites;
    /// 0.1 = a 100k-site campaign with all quotas scaled).
    pub fn new(spec: ExperimentSpec, scale: f64) -> Population {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        Population { spec, scale }
    }

    /// The experiment specification.
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// The scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Scales a paper count to this population.
    pub fn scaled(&self, count: u64) -> u64 {
        (count as f64 * self.scale).round() as u64
    }

    /// Scaled total Alexa list size.
    pub fn total_sites(&self) -> u64 {
        self.scaled(self.spec.total_sites)
    }

    /// Scaled number of h2-negotiating sites.
    pub fn h2_count(&self) -> u64 {
        self.scaled(self.spec.h2_sites)
    }

    /// Scaled number of HEADERS-returning sites.
    pub fn headers_count(&self) -> u64 {
        self.scaled(self.spec.headers_sites)
    }

    /// Iterates every h2 site (headers-returning sites first, then the
    /// mute population).
    pub fn iter_h2_sites(&self) -> impl Iterator<Item = SiteSample> + '_ {
        (0..self.h2_count()).map(move |i| self.site(i))
    }

    /// Iterates only the HEADERS-returning sites.
    pub fn iter_headers_sites(&self) -> impl Iterator<Item = SiteSample> + '_ {
        (0..self.headers_count()).map(move |i| self.site(i))
    }

    /// Cuts the index space by quota: returns the category index for site
    /// `i` given per-category (unscaled) counts over the headers
    /// population; the last category absorbs rounding remainder.
    fn quota_category(&self, i: u64, dimension: u64, counts: &[u64]) -> usize {
        let n = self.headers_count();
        let position = permuted_position(i, n, dimension, self.spec.seed);
        let mut boundary = 0f64;
        for (k, &count) in counts.iter().enumerate() {
            boundary += count as f64 * self.scale;
            if (position as f64) < boundary.round() {
                return k;
            }
        }
        counts.len()
    }

    /// Generates site `i` of the h2 population.
    ///
    /// # Panics
    ///
    /// Panics when `i` is outside the h2 population.
    pub fn site(&self, i: u64) -> SiteSample {
        assert!(i < self.h2_count(), "site index out of range");
        let mut rng = StdRng::seed_from_u64(splitmix64(self.spec.seed ^ (i << 1) ^ 0x5173));
        let mute = i >= self.headers_count();
        let family = if mute {
            Family::Tail
        } else {
            self.family_of(i)
        };
        let mut profile = self.base_profile(family, i);
        profile.behavior.mute = mute;

        if !mute {
            self.apply_settings(i, &mut profile, &mut rng);
            self.apply_quirks(i, family, &mut profile, &mut rng);
        }
        self.apply_negotiation(i, &mut profile);

        // Site-specific response headers: natural HPACK-ratio dispersion.
        let extras = rng.gen_range(0..=8);
        for j in 0..extras {
            let len = rng.gen_range(4..=40);
            let value: String = (0..len)
                .map(|k| (b'a' + ((k * 7 + j) % 26) as u8) as char)
                .collect();
            profile
                .behavior
                .extra_response_headers
                .push((format!("x-h{j}"), value));
        }
        profile.behavior.processing_delay = SimDuration::from_micros(rng.gen_range(200..5_000));

        // The push population is tiny (6 / 15 sites at full scale); keep
        // at least one per campaign so Figure 3 is runnable at any scale.
        let push_quota = ((self.spec.push_sites as f64 * self.scale).round() as u64).max(1);
        let push_position = permuted_position(i, self.headers_count(), dim::PUSH, self.spec.seed);
        let push_site = !mute && push_position < push_quota;
        if push_site {
            // The paper's push sites are the handful that demonstrably
            // work (Figure 3 measures them in a real browser); a push
            // site therefore sheds the pathological flow-control quirks.
            profile.behavior.push = true;
            profile.behavior.fc_on_headers = false;
            profile.behavior.headers_gated_at_zero_window = false;
            profile.behavior.zero_len_data_when_blocked = false;
            profile.behavior.mute = false;
        }
        let site = self.site_spec(i, push_site, &mut rng);
        let link = self.link(&mut rng);
        SiteSample {
            index: i,
            family,
            profile: Arc::new(profile),
            site: Arc::new(site),
            link,
        }
    }

    fn family_of(&self, i: u64) -> Family {
        let counts: Vec<u64> = FAMILIES
            .iter()
            .map(|(_, a, b)| if self.spec.second { *b } else { *a })
            .collect();
        let k = self.quota_category(i, dim::FAMILY, &counts);
        FAMILIES.get(k).map_or(Family::Tail, |(f, _, _)| *f)
    }

    fn base_profile(&self, family: Family, i: u64) -> ServerProfile {
        match family {
            Family::Litespeed => ServerProfile::litespeed(),
            Family::Nginx => ServerProfile::nginx(),
            Family::Gse => ServerProfile::gse(),
            Family::Tengine => ServerProfile::tengine(),
            Family::CloudflareNginx => ServerProfile::cloudflare_nginx(),
            Family::IdeaWeb => ServerProfile::ideaweb(),
            Family::TengineAserver => ServerProfile::tengine_aserver(),
            Family::Tail => {
                let kinds = if self.spec.second {
                    SERVER_KINDS.1
                } else {
                    SERVER_KINDS.0
                };
                let kind = splitmix64(self.spec.seed ^ i ^ 0x7a11) % kinds.max(1);
                let mut profile = match kind % 3 {
                    0 => ServerProfile::rfc7540(),
                    1 => ServerProfile::nghttpd(),
                    _ => ServerProfile::h2o(),
                };
                profile.name = format!("tail-{kind}");
                // The name must depend on the *kind* only, so the number
                // of distinct server strings the scanner sees tracks the
                // paper's 223/345 counts.
                profile.behavior.server_name = format!("srv-{kind}/{}.{}", kind % 4, kind % 10);
                profile
            }
        }
    }

    fn apply_settings(&self, i: u64, profile: &mut ServerProfile, rng: &mut StdRng) {
        // The NULL rows of Tables V–VII all count the same 1,050 / 1,015
        // sites: those whose SETTINGS frame announces nothing.
        let null_count = if self.spec.second { 1_015 } else { 1_050 };
        let announces_nothing = self.quota_category(i, dim::SETTINGS_NULL, &[null_count]) == 0;
        if announces_nothing {
            profile.behavior.announced = Settings::new();
            profile.behavior.zero_window_then_update = None;
            return;
        }
        let second = self.spec.second;
        let mut settings = Settings::new()
            .with(SettingId::HeaderTableSize, 4_096)
            .with(
                SettingId::MaxConcurrentStreams,
                draw_non_null(MAX_CONCURRENT_STREAMS, second, rng.gen()),
            );
        let iws = draw_non_null(INITIAL_WINDOW_SIZE, second, rng.gen());
        settings.push(SettingId::InitialWindowSize, iws);
        settings.push(
            SettingId::MaxFrameSize,
            draw_non_null(MAX_FRAME_SIZE, second, rng.gen()),
        );
        let mhl = draw_non_null(MAX_HEADER_LIST_SIZE, second, rng.gen());
        settings.push(
            SettingId::MaxHeaderListSize,
            if mhl == UNLIMITED { u32::MAX } else { mhl },
        );
        profile.behavior.zero_window_then_update = if iws == 0 { Some(65_535) } else { None };
        profile.behavior.announced = settings;
    }

    fn apply_quirks(&self, i: u64, family: Family, profile: &mut ServerProfile, rng: &mut StdRng) {
        let spec = &self.spec;
        let b = &mut profile.behavior;

        // §V-D1 small-window outcomes. LiteSpeed contributes most of the
        // no-response population via flow control on HEADERS.
        let litespeed_fc = spec.no_response_litespeed;
        let other_fc = spec.small_window_no_response - litespeed_fc;
        let litespeed_total = FAMILIES
            .iter()
            .find(|(f, _, _)| *f == Family::Litespeed)
            .map(|(_, a, b)| if spec.second { *b } else { *a })
            .expect("litespeed row exists");
        b.fc_on_headers = if family == Family::Litespeed {
            // Local quota within the LiteSpeed slice.
            let p = litespeed_fc as f64 / litespeed_total as f64;
            rng.gen_bool(p.min(1.0))
        } else {
            let others_total = spec.headers_sites - litespeed_total;
            rng.gen_bool((other_fc as f64 / others_total as f64).min(1.0))
        };
        if !b.fc_on_headers {
            let zero_len_pool = spec.headers_sites - spec.small_window_no_response;
            b.zero_len_data_when_blocked = self.quota_category(
                i,
                dim::SMALL_WINDOW,
                &[
                    spec.small_window_zero_len,
                    zero_len_pool - spec.small_window_zero_len,
                ],
            ) == 0;
            // §V-D2: sites that gate HEADERS on a non-zero window. The
            // quota permutation covers *all* headers sites but only
            // applies to non-fc sites, so inflate the target by the fc
            // share to land on the paper's count among the eligible.
            let gated =
                spec.headers_sites - spec.small_window_no_response - spec.headers_at_zero_window;
            let fc_share = spec.small_window_no_response as f64 / spec.headers_sites as f64;
            let inflated = (gated as f64 / (1.0 - fc_share)).round() as u64;
            b.headers_gated_at_zero_window =
                self.quota_category(i, dim::HEADERS_ZERO, &[inflated]) == 0;
        }

        // §V-D3: zero WINDOW_UPDATE reactions.
        let z = &spec.zero_update_stream;
        b.zero_window_update_stream =
            match self.quota_category(i, dim::ZWU_STREAM, &[z.rst, z.goaway, z.goaway_debug]) {
                0 => QuirkAction::RstStream,
                1 => QuirkAction::Goaway,
                2 => {
                    b.zero_window_debug = Some("the window update shouldn't be zero".to_string());
                    QuirkAction::Goaway
                }
                _ => QuirkAction::Ignore,
            };
        b.zero_window_update_conn =
            if self.quota_category(i, dim::ZWU_CONN, &[spec.zero_update_conn_goaway]) == 0 {
                QuirkAction::Goaway
            } else {
                QuirkAction::Ignore
            };

        // §V-D4: window-overflow reactions.
        b.large_window_update_stream =
            if self.quota_category(i, dim::LWU_STREAM, &[spec.large_update_stream_rst]) == 0 {
                QuirkAction::RstStream
            } else {
                QuirkAction::Ignore
            };
        b.large_window_update_conn =
            if self.quota_category(i, dim::LWU_CONN, &[spec.large_update_conn_goaway]) == 0 {
                QuirkAction::Goaway
            } else {
                QuirkAction::Ignore
            };

        // §V-E1: the four priority populations.
        b.priority_mode = match self.quota_category(
            i,
            dim::PRIORITY,
            &[
                spec.priority_by_both,
                spec.priority_by_first - spec.priority_by_both,
                spec.priority_by_last - spec.priority_by_both,
            ],
        ) {
            0 => PriorityMode::Strict,
            1 => PriorityMode::FirstFrameOnly,
            2 => PriorityMode::CompletionOrder,
            _ => PriorityMode::None,
        };

        // §V-E2: self-dependency reactions.
        let s = &spec.self_dependency;
        b.self_dependency = match self.quota_category(i, dim::SELF_DEP, &[s.rst, s.goaway]) {
            0 => QuirkAction::RstStream,
            1 => QuirkAction::Goaway,
            _ => QuirkAction::Ignore,
        };

        // Figures 4/5: family-conditioned HPACK variation.
        match family {
            Family::Nginx => {
                // 6.5% of Nginx sites compress properly (the non-1 tail of
                // the Figure 4 CDF).
                b.hpack_index_responses = rng.gen_bool(0.065);
            }
            Family::Litespeed
                // ~20% of LiteSpeed sites land at ratios above 0.3
                // through per-response cookies.
                if rng.gen_bool(0.2) => {
                    b.cookie_injection = true;
                }
            Family::Tail => {
                b.hpack_index_responses = rng.gen_bool(0.5);
            }
            _ => {}
        }
    }

    fn apply_negotiation(&self, i: u64, profile: &mut ServerProfile) {
        let spec = &self.spec;
        let npn_only = spec.h2_sites - spec.alpn_sites;
        let alpn_only = spec.h2_sites - spec.npn_sites;
        // Quota over the h2 population (not just headers sites).
        let n = self.h2_count();
        let position = permuted_position(i, n, dim::NEGOTIATION, spec.seed);
        let npn_boundary = (npn_only as f64 * self.scale).round() as u64;
        let alpn_boundary = npn_boundary + (alpn_only as f64 * self.scale).round() as u64;
        profile.behavior.tls = if position < npn_boundary {
            TlsConfig::h2_npn_only()
        } else if position < alpn_boundary {
            TlsConfig::h2_alpn_only()
        } else {
            TlsConfig::h2_full()
        };
    }

    /// The site's stable, campaign-independent identity. Hostnames derive
    /// from the site's rank in the (shared) top-1M list — not from the
    /// campaign generation — so persisted records from different
    /// campaigns can be joined site-by-site, which is what the paper's
    /// Jul-2016 → Jan-2017 longitudinal comparison does.
    pub fn authority(i: u64) -> String {
        format!("site-{i}.top1m")
    }

    fn site_spec(&self, i: u64, push_site: bool, rng: &mut StdRng) -> SiteSpec {
        let mut site = SiteSpec::new(Population::authority(i));
        let page_size = rng.gen_range(8_192..=30_000);
        site.add(Resource::synthetic("/", "text/html", page_size));
        let body = big_body();
        for k in 1..=7 {
            site.add(Resource {
                path: format!("/big/{k}"),
                content_type: "application/octet-stream".into(),
                body: body.clone(),
            });
        }
        if push_site {
            let assets = rng.gen_range(5..=15);
            let mut pushed = Vec::new();
            for a in 0..assets {
                let path = format!("/asset/{a}");
                let size = rng.gen_range(10_000..=40_000);
                site.add(Resource::synthetic(&path, "application/javascript", size));
                pushed.push(path);
            }
            site = site.push_on("/", pushed);
        }
        site
    }

    fn link(&self, rng: &mut StdRng) -> LinkSpec {
        // Log-normal-ish RTT distribution: median ~30 ms one-way,
        // clamped to [2, 400] ms (Box-Muller from two uniforms).
        let u1: f64 = rng.gen_range(1e-9..1.0);
        let u2: f64 = rng.gen();
        let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let delay_ms = (3.4 + 0.8 * normal).exp().clamp(2.0, 400.0);
        LinkSpec {
            delay: SimDuration::from_micros((delay_ms * 1_000.0) as u64),
            jitter: SimDuration::from_micros((delay_ms * 20.0) as u64),
            bandwidth_bps: Some(100_000_000),
            loss: 0.0,
            retransmit_penalty: SimDuration::from_millis(200),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_population() -> Population {
        Population::new(ExperimentSpec::first(), 0.01)
    }

    #[test]
    fn generation_is_deterministic() {
        let pop = small_population();
        let a = pop.site(7);
        let b = pop.site(7);
        assert_eq!(a.profile.behavior, b.profile.behavior);
        assert_eq!(a.site, b.site);
        assert_eq!(a.link, b.link);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let n = 997;
        let mut seen = vec![false; n as usize];
        for i in 0..n {
            let p = permuted_position(i, n, 3, 42);
            assert!(!seen[p as usize], "collision at {p}");
            seen[p as usize] = true;
        }
    }

    #[test]
    fn family_quotas_scale() {
        let pop = small_population();
        let mut litespeed = 0u64;
        let mut nginx = 0u64;
        for site in pop.iter_headers_sites() {
            match site.family {
                Family::Litespeed => litespeed += 1,
                Family::Nginx => nginx += 1,
                _ => {}
            }
        }
        // 1% scale: expect ~126 LiteSpeed, ~113 Nginx.
        assert!((120..=133).contains(&litespeed), "litespeed {litespeed}");
        assert!((107..=119).contains(&nginx), "nginx {nginx}");
    }

    #[test]
    fn priority_quotas_produce_tiny_populations() {
        // At full scale the paper has 38 strict sites; at 10% we expect
        // close to 4, and crucially not zero.
        let pop = Population::new(ExperimentSpec::first(), 0.1);
        let strict = pop
            .iter_headers_sites()
            .filter(|s| s.profile.behavior.priority_mode == PriorityMode::Strict)
            .count();
        assert!((2..=6).contains(&strict), "strict {strict}");
    }

    #[test]
    fn push_sites_exist_even_at_reduced_scale() {
        let pop = Population::new(ExperimentSpec::second(), 0.1);
        let push_sites: Vec<SiteSample> = pop
            .iter_headers_sites()
            .filter(|s| !s.site.push_manifest.is_empty())
            .collect();
        // 15 sites at 10% → expect ~2.
        assert!(!push_sites.is_empty());
        for site in &push_sites {
            assert!(site.profile.behavior.push);
        }
    }

    #[test]
    fn mute_sites_negotiate_but_do_not_answer() {
        let pop = small_population();
        let mute_index = pop.headers_count();
        assert!(mute_index < pop.h2_count());
        let site = pop.site(mute_index);
        assert!(site.profile.behavior.mute);
    }

    #[test]
    fn settings_draws_respect_validation() {
        let pop = small_population();
        for site in pop.iter_headers_sites().take(200) {
            site.profile
                .behavior
                .announced
                .validate()
                .expect("announced settings valid");
        }
    }

    #[test]
    fn zero_iws_sites_window_update_after_settings() {
        let pop = Population::new(ExperimentSpec::first(), 0.05);
        let mut checked = 0;
        for site in pop.iter_headers_sites() {
            if site
                .profile
                .behavior
                .announced
                .get(SettingId::InitialWindowSize)
                == Some(0)
            {
                assert!(site.profile.behavior.zero_window_then_update.is_some());
                checked += 1;
            }
        }
        assert!(checked > 0, "some zero-IWS sites exist");
    }

    #[test]
    fn big_objects_cover_the_connection_window() {
        let pop = small_population();
        let site = pop.site(0);
        assert!(site.site.resource("/big/7").unwrap().body.len() > 65_535);
    }
}
