//! Experiment specifications: every aggregate the paper reports for each
//! of its two measurement campaigns, used both to calibrate generation and
//! to validate the regenerated tables.

/// Reaction-count targets for one offending-frame probe (§V-D3/4, §V-E2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactionCounts {
    /// Sites replying RST_STREAM.
    pub rst: u64,
    /// Sites replying GOAWAY (no debug data).
    pub goaway: u64,
    /// Sites replying GOAWAY with debug data.
    pub goaway_debug: u64,
    /// Everyone else ignores the frame.
    pub ignored: u64,
}

impl ReactionCounts {
    /// Total sites probed.
    pub fn total(&self) -> u64 {
        self.rst + self.goaway + self.goaway_debug + self.ignored
    }
}

/// All calibration targets for one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Identifier ("experiment-1").
    pub name: &'static str,
    /// Human label ("Jul. 2016").
    pub label: &'static str,
    /// Uses the `exp2` column of the marginals.
    pub second: bool,
    /// Alexa list size.
    pub total_sites: u64,
    /// Sites negotiating h2 via NPN (49,334 / 78,714).
    pub npn_sites: u64,
    /// Sites negotiating h2 via ALPN (47,966 / 70,859).
    pub alpn_sites: u64,
    /// Sites negotiating h2 via either mechanism (union; the paper does
    /// not publish it — chosen consistent with both counts).
    pub h2_sites: u64,
    /// Sites returning HEADERS frames (44,390 / 64,299) — the denominator
    /// of every follow-up test.
    pub headers_sites: u64,
    /// §V-D1: 1-octet-window outcomes.
    pub small_window_one_byte: u64,
    /// §V-D1: zero-length DATA population.
    pub small_window_zero_len: u64,
    /// §V-D1: no-response population.
    pub small_window_no_response: u64,
    /// §V-D1: how many of the no-response sites run LiteSpeed
    /// (explicit only for experiment 2: 10,472).
    pub no_response_litespeed: u64,
    /// §V-D2: sites still sending HEADERS under a zero initial window.
    pub headers_at_zero_window: u64,
    /// §V-D3: zero WINDOW_UPDATE on a stream.
    pub zero_update_stream: ReactionCounts,
    /// §V-D3: zero WINDOW_UPDATE on the connection ("nearly all" GOAWAY).
    pub zero_update_conn_goaway: u64,
    /// §V-D4: sites sending GOAWAY on connection window overflow.
    pub large_update_conn_goaway: u64,
    /// §V-D4: sites sending RST_STREAM on stream window overflow.
    pub large_update_stream_rst: u64,
    /// §V-E1: sites passing by the last-DATA-frame rule.
    pub priority_by_last: u64,
    /// §V-E1: sites passing by the first-DATA-frame rule.
    pub priority_by_first: u64,
    /// §V-E1: sites passing both rules.
    pub priority_by_both: u64,
    /// §V-E2: self-dependency reactions (RST count published; the
    /// GOAWAY/ignore split is our allocation).
    pub self_dependency: ReactionCounts,
    /// §V-F: sites that pushed on the front page (6, then 6+9=15).
    pub push_sites: u64,
    /// §V-G: HPACK data kept after the r > 1 filter.
    pub hpack_sites_kept: u64,
    /// Campaign master seed.
    pub seed: u64,
}

impl ExperimentSpec {
    /// Experiment 1 — July 2016.
    pub fn first() -> ExperimentSpec {
        ExperimentSpec {
            name: "experiment-1",
            label: "Jul. 2016",
            second: false,
            total_sites: 1_000_000,
            npn_sites: 49_334,
            alpn_sites: 47_966,
            h2_sites: 52_300,
            headers_sites: 44_390,
            small_window_one_byte: 37_525,
            small_window_zero_len: 2_433,
            small_window_no_response: 4_432,
            no_response_litespeed: 4_000,
            headers_at_zero_window: 17_191,
            zero_update_stream: ReactionCounts {
                rst: 23_673,
                goaway: 31,
                goaway_debug: 26,
                ignored: 44_390 - 23_673 - 31 - 26,
            },
            zero_update_conn_goaway: 44_200,
            large_update_conn_goaway: 40_567,
            large_update_stream_rst: 36_619,
            priority_by_last: 1_147,
            priority_by_first: 46,
            priority_by_both: 38,
            self_dependency: ReactionCounts {
                rst: 18_237,
                goaway: 15_692,
                goaway_debug: 0,
                ignored: 44_390 - 18_237 - 15_692,
            },
            push_sites: 6,
            hpack_sites_kept: 37_849,
            seed: 0x2016_0701,
        }
    }

    /// Experiment 2 — January 2017.
    pub fn second() -> ExperimentSpec {
        ExperimentSpec {
            name: "experiment-2",
            label: "Jan. 2017",
            second: true,
            total_sites: 1_000_000,
            npn_sites: 78_714,
            alpn_sites: 70_859,
            h2_sites: 85_000,
            headers_sites: 64_299,
            small_window_one_byte: 44_204,
            small_window_zero_len: 8_056,
            small_window_no_response: 12_039,
            no_response_litespeed: 10_472,
            headers_at_zero_window: 23_834,
            zero_update_stream: ReactionCounts {
                rst: 26_156,
                goaway: 162,
                goaway_debug: 42,
                ignored: 64_299 - 26_156 - 162 - 42,
            },
            zero_update_conn_goaway: 64_000,
            large_update_conn_goaway: 62_668,
            large_update_stream_rst: 44_057,
            priority_by_last: 2_187,
            priority_by_first: 117,
            priority_by_both: 111,
            self_dependency: ReactionCounts {
                rst: 53_379,
                goaway: 6_552,
                goaway_debug: 0,
                ignored: 64_299 - 53_379 - 6_552,
            },
            push_sites: 15,
            hpack_sites_kept: 46_948,
            seed: 0x2017_0115,
        }
    }

    /// Both campaigns, in order.
    pub fn both() -> [ExperimentSpec; 2] {
        [ExperimentSpec::first(), ExperimentSpec::second()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_window_outcomes_partition_headers_sites() {
        for spec in ExperimentSpec::both() {
            assert_eq!(
                spec.small_window_one_byte
                    + spec.small_window_zero_len
                    + spec.small_window_no_response,
                spec.headers_sites,
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn reaction_counts_are_consistent() {
        for spec in ExperimentSpec::both() {
            assert_eq!(spec.zero_update_stream.total(), spec.headers_sites);
            assert_eq!(spec.self_dependency.total(), spec.headers_sites);
        }
    }

    #[test]
    fn priority_rule_counts_nest() {
        for spec in ExperimentSpec::both() {
            assert!(spec.priority_by_both <= spec.priority_by_first);
            assert!(spec.priority_by_both <= spec.priority_by_last);
        }
    }

    #[test]
    fn union_bounds_hold() {
        for spec in ExperimentSpec::both() {
            assert!(spec.h2_sites >= spec.npn_sites.max(spec.alpn_sites));
            assert!(spec.h2_sites <= spec.npn_sites + spec.alpn_sites);
            assert!(spec.headers_sites <= spec.h2_sites);
        }
    }
}
