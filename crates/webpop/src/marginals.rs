//! The paper's published marginal distributions, transcribed as data.
//!
//! Tables IV–VII are copied cell-for-cell; the Figure 2
//! `SETTINGS_MAX_CONCURRENT_STREAMS` distribution is synthesized to match
//! the figure's described shape (100 and 128 dominate; the majority of
//! sites announce ≥ 100; values span 10⁰..10⁵).

/// One row of a value-count marginal. `value = None` encodes the paper's
/// NULL (parameter absent from the SETTINGS frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueCount {
    /// Announced value (`None` = NULL).
    pub value: Option<u32>,
    /// Number of sites in experiment 1 (Jul 2016).
    pub exp1: u64,
    /// Number of sites in experiment 2 (Jan 2017).
    pub exp2: u64,
}

const fn vc(value: Option<u32>, exp1: u64, exp2: u64) -> ValueCount {
    ValueCount { value, exp1, exp2 }
}

/// Sentinel for Table VII's "unlimited" row.
pub const UNLIMITED: u32 = u32::MAX;

/// Table V: `SETTINGS_INITIAL_WINDOW_SIZE`.
pub const INITIAL_WINDOW_SIZE: &[ValueCount] = &[
    vc(None, 1_050, 1_015),
    vc(Some(0), 3_072, 7_499),
    vc(Some(32_768), 3, 59),
    vc(Some(65_535), 49, 106),
    vc(Some(65_536), 20_477, 40_612),
    vc(Some(131_072), 1, 1),
    vc(Some(262_144), 1, 1),
    vc(Some(1_048_576), 10_799, 10_929),
    vc(Some(16_777_216), 11, 15),
    vc(Some(20_000_000), 1, 0),
    vc(Some(2_147_483_647), 8_926, 4_062),
];

/// Table VI: `SETTINGS_MAX_FRAME_SIZE`.
pub const MAX_FRAME_SIZE: &[ValueCount] = &[
    vc(None, 1_050, 1_015),
    vc(Some(16_384), 24_781, 25_987),
    vc(Some(1_048_576), 27, 81),
    vc(Some(16_777_215), 18_532, 37_216),
];

/// Table VII: `SETTINGS_MAX_HEADER_LIST_SIZE` ("unlimited" encoded as
/// [`UNLIMITED`]).
pub const MAX_HEADER_LIST_SIZE: &[ValueCount] = &[
    vc(None, 1_050, 1_015),
    vc(Some(UNLIMITED), 32_568, 52_311),
    vc(Some(16_384), 10_717, 10_806),
    vc(Some(32_768), 3, 59),
    vc(Some(81_920), 2, 3),
    vc(Some(131_072), 24, 25),
    vc(Some(1_048_896), 26, 80),
];

/// Figure 2 (synthesized): `SETTINGS_MAX_CONCURRENT_STREAMS`.
pub const MAX_CONCURRENT_STREAMS: &[ValueCount] = &[
    vc(None, 1_050, 1_015),
    vc(Some(1), 60, 70),
    vc(Some(10), 150, 160),
    vc(Some(32), 320, 300),
    vc(Some(50), 200, 240),
    vc(Some(64), 260, 300),
    vc(Some(100), 18_600, 30_500),
    vc(Some(101), 540, 600),
    vc(Some(120), 230, 260),
    vc(Some(128), 15_800, 22_900),
    vc(Some(200), 990, 1_300),
    vc(Some(250), 430, 500),
    vc(Some(256), 2_950, 3_300),
    vc(Some(500), 470, 560),
    vc(Some(512), 310, 380),
    vc(Some(1_000), 900, 1_050),
    vc(Some(1_024), 260, 310),
    vc(Some(2_000), 190, 220),
    vc(Some(4_096), 150, 180),
    vc(Some(10_000), 250, 298),
    vc(Some(100_000), 280, 350),
];

/// Table IV server families plus the long tail; counts are sites in each
/// experiment (headers-returning sites only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// LiteSpeed.
    Litespeed,
    /// Stock Nginx.
    Nginx,
    /// Google's GSE.
    Gse,
    /// Tengine.
    Tengine,
    /// cloudflare-nginx.
    CloudflareNginx,
    /// IdeaWebServer/v0.80.
    IdeaWeb,
    /// Tengine/Aserver (the renamed tmall.com fleet).
    TengineAserver,
    /// Everything else — 216/338 further server strings.
    Tail,
}

impl Family {
    /// Every family, in Table IV order (tail last).
    pub const ALL: [Family; 8] = [
        Family::Litespeed,
        Family::Nginx,
        Family::Gse,
        Family::Tengine,
        Family::CloudflareNginx,
        Family::IdeaWeb,
        Family::TengineAserver,
        Family::Tail,
    ];

    /// Stable short code used in persisted campaign records. Codes are
    /// part of the `h2campaign-v1` on-disk schema: renaming one is a
    /// format break and requires a schema bump.
    pub fn code(self) -> &'static str {
        match self {
            Family::Litespeed => "litespeed",
            Family::Nginx => "nginx",
            Family::Gse => "gse",
            Family::Tengine => "tengine",
            Family::CloudflareNginx => "cf-nginx",
            Family::IdeaWeb => "ideaweb",
            Family::TengineAserver => "tengine-aserver",
            Family::Tail => "tail",
        }
    }

    /// Inverse of [`Family::code`].
    pub fn parse_code(code: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.code() == code)
    }
}

/// Table IV (plus the residual tail so each column sums to the
/// experiment's headers-returning site count).
pub const FAMILIES: &[(Family, u64, u64)] = &[
    (Family::Litespeed, 12_637, 13_626),
    (Family::Nginx, 11_293, 27_394),
    (Family::Gse, 9_928, 9_929),
    (Family::Tengine, 2_535, 674),
    (Family::CloudflareNginx, 1_197, 1_766),
    (Family::IdeaWeb, 1_128, 1_261),
    (Family::TengineAserver, 0, 2_620),
    (Family::Tail, 5_672, 7_029),
];

/// Distinct server-name strings observed (§V-B2).
pub const SERVER_KINDS: (u64, u64) = (223, 345);

/// Draws from a marginal by experiment, using a uniform `u` in `[0, 1)`.
pub fn draw(marginal: &[ValueCount], second_experiment: bool, u: f64) -> Option<u32> {
    let total: u64 = marginal
        .iter()
        .map(|vc| if second_experiment { vc.exp2 } else { vc.exp1 })
        .sum();
    let mut threshold = (u * total as f64) as u64;
    for vc in marginal {
        let count = if second_experiment { vc.exp2 } else { vc.exp1 };
        if threshold < count {
            return vc.value;
        }
        threshold -= count;
    }
    marginal.last().and_then(|vc| vc.value)
}

/// Draws from a marginal *excluding* the NULL row (for sites that do
/// announce the parameter).
pub fn draw_non_null(marginal: &[ValueCount], second_experiment: bool, u: f64) -> u32 {
    let rows: Vec<ValueCount> = marginal
        .iter()
        .filter(|vc| vc.value.is_some())
        .copied()
        .collect();
    draw(&rows, second_experiment, u).expect("non-null rows only")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column_sum(marginal: &[ValueCount], second: bool) -> u64 {
        marginal
            .iter()
            .map(|vc| if second { vc.exp2 } else { vc.exp1 })
            .sum()
    }

    #[test]
    fn table_v_columns_sum_to_headers_sites() {
        assert_eq!(column_sum(INITIAL_WINDOW_SIZE, false), 44_390);
        assert_eq!(column_sum(INITIAL_WINDOW_SIZE, true), 64_299);
    }

    #[test]
    fn table_vi_columns_sum_to_headers_sites() {
        assert_eq!(column_sum(MAX_FRAME_SIZE, false), 44_390);
        assert_eq!(column_sum(MAX_FRAME_SIZE, true), 64_299);
    }

    #[test]
    fn table_vii_columns_sum_to_headers_sites() {
        assert_eq!(column_sum(MAX_HEADER_LIST_SIZE, false), 44_390);
        assert_eq!(column_sum(MAX_HEADER_LIST_SIZE, true), 64_299);
    }

    #[test]
    fn family_columns_sum_to_headers_sites() {
        let exp1: u64 = FAMILIES.iter().map(|(_, a, _)| a).sum();
        let exp2: u64 = FAMILIES.iter().map(|(_, _, b)| b).sum();
        assert_eq!(exp1, 44_390);
        assert_eq!(exp2, 64_299);
    }

    #[test]
    fn draw_covers_the_support() {
        let mut seen_zero = false;
        let mut seen_null = false;
        for i in 0..1_000 {
            let u = i as f64 / 1_000.0;
            match draw(INITIAL_WINDOW_SIZE, false, u) {
                None => seen_null = true,
                Some(0) => seen_zero = true,
                _ => {}
            }
        }
        assert!(seen_null && seen_zero);
    }

    #[test]
    fn draw_proportions_track_counts() {
        let n = 100_000;
        let hits = (0..n)
            .filter(|i| draw(MAX_FRAME_SIZE, false, *i as f64 / n as f64) == Some(16_384))
            .count();
        let expect = 24_781.0 / 44_390.0;
        let got = hits as f64 / n as f64;
        assert!((got - expect).abs() < 0.01, "got {got}, expect {expect}");
    }

    #[test]
    fn draw_non_null_never_yields_null() {
        for i in 0..500 {
            let u = i as f64 / 500.0;
            let _ = draw_non_null(MAX_HEADER_LIST_SIZE, true, u);
        }
    }

    #[test]
    fn family_codes_round_trip_and_are_distinct() {
        for family in Family::ALL {
            assert_eq!(Family::parse_code(family.code()), Some(family));
        }
        let mut codes: Vec<&str> = Family::ALL.iter().map(|f| f.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), Family::ALL.len());
        assert_eq!(Family::parse_code("apache"), None);
    }
}
