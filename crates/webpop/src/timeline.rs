//! Regular-scanning timeline — the paper's stated future work ("we will
//! perform regular scanning on popular web sites to characterize how
//! HTTP/2 and its features are adopted").
//!
//! The two measured campaigns (Jul. 2016, Jan. 2017) pin down two points
//! of every aggregate; [`interpolate`] produces a calibrated
//! [`ExperimentSpec`] for any instant between (or moderately beyond)
//! them, so a monthly scan series can be simulated: adoption growth,
//! the Nginx surge, Tengine's rename to Tengine/Aserver, the growth of
//! zero-window announcements, and so on — each month a full synthetic
//! population that can be scanned with the ordinary pipeline.

use crate::spec::{ExperimentSpec, ReactionCounts};

/// Months between the paper's two campaigns (Jul. 2016 → Jan. 2017).
pub const CAMPAIGN_GAP_MONTHS: f64 = 6.0;

fn lerp(a: u64, b: u64, t: f64) -> u64 {
    let v = a as f64 + (b as f64 - a as f64) * t;
    v.round().max(0.0) as u64
}

/// Linearly interpolates every aggregate between the two campaigns.
/// `t = 0` is experiment 1, `t = 1` is experiment 2; values up to
/// `t = 1.5` extrapolate a further quarter-year of the same trends.
///
/// # Panics
///
/// Panics when `t` is outside `[0, 1.5]` — extrapolating further than a
/// quarter beyond the measured data has no empirical basis.
pub fn interpolate(t: f64) -> ExperimentSpec {
    assert!(
        (0.0..=1.5).contains(&t),
        "t={t} outside the calibrated range"
    );
    let a = ExperimentSpec::first();
    let b = ExperimentSpec::second();
    let headers = lerp(a.headers_sites, b.headers_sites, t);
    let lerp_rc = |x: &ReactionCounts, y: &ReactionCounts| {
        let rst = lerp(x.rst, y.rst, t);
        let goaway = lerp(x.goaway, y.goaway, t);
        let goaway_debug = lerp(x.goaway_debug, y.goaway_debug, t);
        ReactionCounts {
            rst,
            goaway,
            goaway_debug,
            ignored: headers.saturating_sub(rst + goaway + goaway_debug),
        }
    };
    ExperimentSpec {
        name: if t <= 0.5 {
            "interpolated-early"
        } else {
            "interpolated-late"
        },
        label: "interpolated",
        // The marginal tables only exist for the two endpoints; use the
        // nearer one.
        second: t > 0.5,
        total_sites: a.total_sites,
        npn_sites: lerp(a.npn_sites, b.npn_sites, t),
        alpn_sites: lerp(a.alpn_sites, b.alpn_sites, t),
        h2_sites: lerp(a.h2_sites, b.h2_sites, t),
        headers_sites: headers,
        small_window_one_byte: lerp(a.small_window_one_byte, b.small_window_one_byte, t),
        small_window_zero_len: lerp(a.small_window_zero_len, b.small_window_zero_len, t),
        small_window_no_response: headers.saturating_sub(
            lerp(a.small_window_one_byte, b.small_window_one_byte, t)
                + lerp(a.small_window_zero_len, b.small_window_zero_len, t),
        ),
        no_response_litespeed: lerp(a.no_response_litespeed, b.no_response_litespeed, t),
        headers_at_zero_window: lerp(a.headers_at_zero_window, b.headers_at_zero_window, t),
        zero_update_stream: lerp_rc(&a.zero_update_stream, &b.zero_update_stream),
        zero_update_conn_goaway: lerp(a.zero_update_conn_goaway, b.zero_update_conn_goaway, t)
            .min(headers),
        large_update_conn_goaway: lerp(a.large_update_conn_goaway, b.large_update_conn_goaway, t)
            .min(headers),
        large_update_stream_rst: lerp(a.large_update_stream_rst, b.large_update_stream_rst, t)
            .min(headers),
        priority_by_last: lerp(a.priority_by_last, b.priority_by_last, t),
        priority_by_first: lerp(a.priority_by_first, b.priority_by_first, t),
        priority_by_both: lerp(a.priority_by_both, b.priority_by_both, t)
            .min(lerp(a.priority_by_first, b.priority_by_first, t))
            .min(lerp(a.priority_by_last, b.priority_by_last, t)),
        self_dependency: lerp_rc(&a.self_dependency, &b.self_dependency),
        push_sites: lerp(a.push_sites, b.push_sites, t),
        hpack_sites_kept: lerp(a.hpack_sites_kept, b.hpack_sites_kept, t),
        seed: a.seed ^ ((t * 1_000.0) as u64).wrapping_mul(0x9e37_79b9),
    }
}

/// A monthly scan series between the campaigns (inclusive): seven specs
/// from Jul. 2016 through Jan. 2017.
pub fn monthly_series() -> Vec<ExperimentSpec> {
    (0..=CAMPAIGN_GAP_MONTHS as u32)
        .map(|month| interpolate(f64::from(month) / CAMPAIGN_GAP_MONTHS))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Population;

    #[test]
    fn endpoints_match_the_measured_campaigns() {
        let t0 = interpolate(0.0);
        assert_eq!(t0.headers_sites, ExperimentSpec::first().headers_sites);
        assert_eq!(t0.npn_sites, ExperimentSpec::first().npn_sites);
        let t1 = interpolate(1.0);
        assert_eq!(t1.headers_sites, ExperimentSpec::second().headers_sites);
        assert_eq!(
            t1.priority_by_last,
            ExperimentSpec::second().priority_by_last
        );
    }

    #[test]
    fn adoption_grows_monotonically_along_the_series() {
        let series = monthly_series();
        assert_eq!(series.len(), 7);
        for pair in series.windows(2) {
            assert!(pair[1].headers_sites >= pair[0].headers_sites);
            assert!(pair[1].npn_sites >= pair[0].npn_sites);
        }
    }

    #[test]
    fn interpolated_specs_stay_internally_consistent() {
        for month in 0..=9 {
            let t = f64::from(month) / CAMPAIGN_GAP_MONTHS;
            let spec = interpolate(t);
            assert_eq!(
                spec.small_window_one_byte
                    + spec.small_window_zero_len
                    + spec.small_window_no_response,
                spec.headers_sites,
                "t={t}"
            );
            assert_eq!(spec.zero_update_stream.total(), spec.headers_sites, "t={t}");
            assert_eq!(spec.self_dependency.total(), spec.headers_sites, "t={t}");
            assert!(spec.priority_by_both <= spec.priority_by_first);
            assert!(spec.headers_sites <= spec.h2_sites);
        }
    }

    #[test]
    fn interpolated_populations_generate_and_scan() {
        let spec = interpolate(0.5);
        let population = Population::new(spec, 0.002);
        let site = population.site(0);
        let report = h2scope::H2Scope::new().survey(&site.target());
        assert!(report.negotiation.h2());
    }

    #[test]
    #[should_panic(expected = "outside the calibrated range")]
    fn far_extrapolation_is_rejected() {
        let _ = interpolate(2.0);
    }
}
