//! Property-based tests for the population generator: determinism, quota
//! exactness, and structural validity at arbitrary scales.

use proptest::prelude::*;
use webpop::{ExperimentSpec, Population};

fn arb_spec() -> impl Strategy<Value = ExperimentSpec> {
    prop_oneof![
        Just(ExperimentSpec::first()),
        Just(ExperimentSpec::second())
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any site regenerates bit-identically.
    #[test]
    fn sites_are_deterministic(
        spec in arb_spec(),
        scale in 0.001f64..0.02,
        pick in any::<prop::sample::Index>(),
    ) {
        let population = Population::new(spec, scale);
        let i = pick.index(population.h2_count().max(1) as usize) as u64;
        let a = population.site(i);
        let b = population.site(i);
        prop_assert_eq!(a.profile.behavior, b.profile.behavior);
        prop_assert_eq!(a.site, b.site);
        prop_assert_eq!(a.family, b.family);
    }

    /// Counts scale linearly and nest correctly.
    #[test]
    fn counts_nest(spec in arb_spec(), scale in 0.001f64..0.05) {
        let population = Population::new(spec, scale);
        prop_assert!(population.headers_count() <= population.h2_count());
        prop_assert!(population.h2_count() <= population.total_sites());
        // Within rounding of the spec ratios.
        let expected = population.spec().headers_sites as f64 * scale;
        prop_assert!((population.headers_count() as f64 - expected).abs() <= 1.0);
    }

    /// Every generated profile carries valid announced SETTINGS and a
    /// site with the objects the probes rely on.
    #[test]
    fn generated_sites_are_probe_ready(
        spec in arb_spec(),
        scale in 0.001f64..0.01,
        pick in any::<prop::sample::Index>(),
    ) {
        let population = Population::new(spec, scale);
        let i = pick.index(population.headers_count().max(1) as usize) as u64;
        let sample = population.site(i);
        prop_assert!(sample.profile.behavior.announced.validate().is_ok());
        prop_assert!(sample.site.resource("/").is_some());
        for k in 1..=7 {
            let big = sample.site.resource(&format!("/big/{k}")).expect("big object");
            prop_assert!(big.body.len() > 65_535, "Algorithm 1 needs window-spanning bodies");
        }
        // Link delays stay in the declared envelope.
        let ms = sample.link.delay.as_millis_f64();
        prop_assert!((2.0..=400.0).contains(&ms), "delay {ms} ms");
    }

    /// Family quotas are exact (not Bernoulli): two disjoint scans of the
    /// same population see identical per-family counts.
    #[test]
    fn family_assignment_is_stable(spec in arb_spec()) {
        let population = Population::new(spec, 0.005);
        let first: Vec<_> =
            population.iter_headers_sites().map(|s| s.family).collect();
        let second: Vec<_> =
            population.iter_headers_sites().map(|s| s.family).collect();
        prop_assert_eq!(first, second);
    }
}
