//! Integration tests for connection-core corners not covered by the
//! per-module unit tests: local settings changes, GOAWAY bookkeeping,
//! stream teardown, and priority-tree pruning under load.

use bytes::Bytes;
use h2conn::{
    CloseReason, ConnectionCore, CoreEvent, EffectiveSettings, PriorityTree, Role, StreamState,
};
use h2hpack::{EncoderOptions, Header};
use h2wire::{DataFrame, ErrorCode, Frame, PrioritySpec, RstStreamFrame, StreamId};

fn pair() -> (ConnectionCore, ConnectionCore) {
    (
        ConnectionCore::new(
            Role::Client,
            EffectiveSettings::default(),
            EncoderOptions::default(),
        ),
        ConnectionCore::new(
            Role::Server,
            EffectiveSettings::default(),
            EncoderOptions::default(),
        ),
    )
}

fn request() -> Vec<Header> {
    vec![
        Header::new(":method", "GET"),
        Header::new(":path", "/"),
        Header::new(":authority", "x"),
    ]
}

fn sid(v: u32) -> StreamId {
    StreamId::new(v)
}

#[test]
fn lowering_local_initial_window_shrinks_existing_recv_windows() {
    let (mut client, mut server) = pair();
    for frame in client.encode_headers(sid(1), &request(), false, None) {
        server.recv_bytes(&frame.to_bytes()).unwrap();
    }
    assert_eq!(
        server
            .streams()
            .get(sid(1))
            .unwrap()
            .recv_window
            .available(),
        65_535
    );
    let local = EffectiveSettings {
        initial_window_size: 1_000,
        ..Default::default()
    };
    server.set_local_settings(local);
    assert_eq!(
        server
            .streams()
            .get(sid(1))
            .unwrap()
            .recv_window
            .available(),
        1_000,
        "retroactive §6.9.2 adjustment on the receive side"
    );
}

#[test]
fn reset_streams_record_their_close_reason() {
    let (mut client, mut server) = pair();
    for frame in client.encode_headers(sid(1), &request(), false, None) {
        server.recv_bytes(&frame.to_bytes()).unwrap();
    }
    let rst = Frame::RstStream(RstStreamFrame {
        stream_id: sid(1),
        code: ErrorCode::Cancel,
    });
    server.recv_bytes(&rst.to_bytes()).unwrap();
    let stream = server.streams().get(sid(1)).unwrap();
    assert_eq!(stream.state, StreamState::Closed);
    assert_eq!(
        stream.close_reason,
        Some(CloseReason::ResetRemote(ErrorCode::Cancel))
    );

    // And locally initiated resets (fresh pair: HPACK contexts are
    // per-connection).
    let (mut client2, mut server2) = pair();
    for frame in client2.encode_headers(sid(3), &request(), false, None) {
        server2.recv_bytes(&frame.to_bytes()).unwrap();
    }
    server2.reset_stream(sid(3), ErrorCode::RefusedStream);
    assert_eq!(
        server2.streams().get(sid(3)).unwrap().close_reason,
        Some(CloseReason::ResetLocal(ErrorCode::RefusedStream))
    );
}

#[test]
fn data_events_preserve_payload_and_padding_accounting() {
    let (mut client, mut server) = pair();
    for frame in client.encode_headers(sid(1), &request(), false, None) {
        server.recv_bytes(&frame.to_bytes()).unwrap();
    }
    let data = Frame::Data(DataFrame {
        stream_id: sid(1),
        data: Bytes::from_static(b"payload"),
        end_stream: true,
        pad_len: Some(10),
    });
    let events = server.recv_bytes(&data.to_bytes()).unwrap();
    match &events[0] {
        CoreEvent::DataReceived {
            data,
            flow_controlled_len,
            end_stream,
            ..
        } => {
            assert_eq!(data.as_ref(), b"payload");
            assert_eq!(*flow_controlled_len, 7 + 10 + 1);
            assert!(end_stream);
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(
        server.streams().get(sid(1)).unwrap().state,
        StreamState::HalfClosedRemote
    );
}

#[test]
fn stream_map_removal_and_recreation() {
    let (mut client, mut server) = pair();
    for frame in client.encode_headers(sid(1), &request(), true, None) {
        server.recv_bytes(&frame.to_bytes()).unwrap();
    }
    assert!(server.streams().get(sid(1)).is_some());
    let removed = server.streams_mut().remove(sid(1)).unwrap();
    assert_eq!(removed.id, sid(1));
    assert!(server.streams().get(sid(1)).is_none());
    // Highest-id tracking is monotonic even after removal.
    assert_eq!(server.streams().highest_client_id(), sid(1));
}

#[test]
fn prune_keeps_active_subtrees_intact() {
    let mut tree = PriorityTree::new();
    let spec = |dep: u32| PrioritySpec {
        exclusive: false,
        dependency: StreamId::new(dep),
        weight: 16,
    };
    // Chain 1 <- 3 <- 5 <- 7 with a side branch 3 <- 9.
    tree.declare(sid(1), spec(0)).unwrap();
    tree.declare(sid(3), spec(1)).unwrap();
    tree.declare(sid(5), spec(3)).unwrap();
    tree.declare(sid(7), spec(5)).unwrap();
    tree.declare(sid(9), spec(3)).unwrap();
    // Only 7 and 9 are still active.
    let active = [7u32, 9];
    let pruned = tree.prune(|s| active.contains(&s.value()));
    assert_eq!(pruned, 3);
    assert_eq!(tree.len(), 2);
    assert!(tree.contains(sid(7)));
    assert!(tree.contains(sid(9)));
    // Both were reparented onto the root.
    assert_eq!(tree.parent_of(sid(7)), Some(sid(0)));
    assert_eq!(tree.parent_of(sid(9)), Some(sid(0)));
    // Scheduling still works.
    assert!(tree.next_stream(|s| active.contains(&s.value())).is_some());
}

#[test]
fn goaway_state_blocks_nothing_mechanical() {
    // GOAWAY is advisory at the core layer: bookkeeping continues so the
    // policy layer can drain in-flight streams (RFC 7540 §6.8).
    let (mut client, mut server) = pair();
    let goaway = Frame::Goaway(h2wire::GoawayFrame {
        last_stream_id: sid(0),
        code: ErrorCode::NoError,
        debug_data: Bytes::new(),
    });
    server.recv_bytes(&goaway.to_bytes()).unwrap();
    assert!(server.goaway_received());
    for frame in client.encode_headers(sid(1), &request(), true, None) {
        let events = server.recv_bytes(&frame.to_bytes()).unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, CoreEvent::HeadersReceived { .. })));
    }
}
