//! Property-based invariants for the priority dependency tree and the
//! flow-control windows.

use h2conn::{FlowWindow, PriorityTree, MAX_WINDOW};
use h2wire::{PrioritySpec, StreamId};
use proptest::prelude::*;

/// One random priority operation.
#[derive(Debug, Clone)]
enum Op {
    Declare {
        stream: u32,
        dep: u32,
        weight: u16,
        exclusive: bool,
    },
    Remove {
        stream: u32,
    },
}

fn arb_op(max_stream: u32) -> impl Strategy<Value = Op> {
    let ids = 0..max_stream;
    prop_oneof![
        4 => (1..max_stream, ids, 1u16..=256, any::<bool>()).prop_map(
            |(stream, dep, weight, exclusive)| Op::Declare {
                stream: stream * 2 + 1,
                dep: dep * 2 + 1,
                weight,
                exclusive,
            }
        ),
        1 => (1..max_stream).prop_map(|stream| Op::Remove { stream: stream * 2 + 1 }),
    ]
}

/// Walks the tree from every node to the root; a cycle would loop forever,
/// so bound the walk by the node count.
fn assert_tree_invariants(tree: &PriorityTree, streams: &[u32]) {
    for &s in streams {
        let sid = StreamId::new(s);
        if !tree.contains(sid) {
            continue;
        }
        // Acyclic: the parent chain reaches the root within len() hops.
        let mut cursor = sid;
        let mut hops = 0;
        while cursor != StreamId::CONNECTION {
            cursor = tree.parent_of(cursor).expect("parent exists");
            hops += 1;
            assert!(hops <= tree.len() + 1, "cycle detected via stream {s}");
        }
        // Parent/child link symmetry.
        let parent = tree.parent_of(sid).unwrap();
        assert!(
            tree.children_of(parent).contains(&sid),
            "stream {s} missing from its parent's child list"
        );
        // Weight bounds.
        let w = tree.weight_of(sid).unwrap();
        assert!((1..=256).contains(&w), "weight {w} out of range");
    }
}

proptest! {
    /// Arbitrary interleavings of declare/remove never produce cycles,
    /// broken parent links, or out-of-range weights.
    #[test]
    fn priority_tree_stays_consistent(ops in prop::collection::vec(arb_op(24), 1..60)) {
        let mut tree = PriorityTree::new();
        let mut touched = Vec::new();
        for op in ops {
            match op {
                Op::Declare { stream, dep, weight, exclusive } => {
                    let spec = PrioritySpec {
                        exclusive,
                        dependency: StreamId::new(dep),
                        weight,
                    };
                    let result = tree.declare(StreamId::new(stream), spec);
                    if stream == dep {
                        prop_assert!(result.is_err(), "self-dependency must be reported");
                    } else {
                        prop_assert!(result.is_ok());
                    }
                    touched.push(stream);
                    touched.push(dep);
                }
                Op::Remove { stream } => {
                    tree.remove(StreamId::new(stream));
                }
            }
            assert_tree_invariants(&tree, &touched);
        }
    }

    /// The scheduler always returns a ready stream when one exists, and
    /// never returns a stream that is not ready.
    #[test]
    fn scheduler_soundness(
        ops in prop::collection::vec(arb_op(16), 1..40),
        ready_mask in any::<u32>(),
    ) {
        let mut tree = PriorityTree::new();
        for op in ops {
            if let Op::Declare { stream, dep, weight, exclusive } = op {
                let _ = tree.declare(
                    StreamId::new(stream),
                    PrioritySpec { exclusive, dependency: StreamId::new(dep), weight },
                );
            }
        }
        let ready: std::collections::HashSet<u32> = (1..64)
            .step_by(2)
            .filter(|&v| tree.contains(StreamId::new(v)) && (ready_mask >> (v % 32)) & 1 == 1)
            .collect();
        let any_ready = !ready.is_empty();
        match tree.next_stream(|s| ready.contains(&s.value())) {
            Some(s) => prop_assert!(
                ready.contains(&s.value()),
                "scheduler returned a non-ready stream"
            ),
            None => prop_assert!(!any_ready, "scheduler starved a ready stream"),
        }
    }

    /// A ready ancestor is always scheduled before its ready descendants.
    #[test]
    fn parent_precedes_descendants(depth in 2usize..10) {
        let mut tree = PriorityTree::new();
        // A chain 1 <- 3 <- 5 <- ...
        let ids: Vec<u32> = (0..depth as u32).map(|i| i * 2 + 1).collect();
        for w in ids.windows(2) {
            tree.declare(
                StreamId::new(w[1]),
                PrioritySpec { exclusive: false, dependency: StreamId::new(w[0]), weight: 16 },
            ).unwrap();
        }
        let ready: Vec<u32> = ids.clone();
        let first = tree.next_stream(|s| ready.contains(&s.value())).unwrap();
        prop_assert_eq!(first.value(), ids[0], "chain head served first");
    }

    /// Window consume/expand never exceeds MAX_WINDOW or loses octets.
    #[test]
    fn window_accounting_is_exact(
        initial in 0u32..=0x7fff_ffff,
        ops in prop::collection::vec((any::<bool>(), 0u32..100_000), 0..100),
    ) {
        let mut w = FlowWindow::new(initial);
        let mut model = i64::from(initial);
        for (grow, n) in ops {
            if grow {
                if model + i64::from(n) <= MAX_WINDOW {
                    w.expand(n).unwrap();
                    model += i64::from(n);
                } else {
                    prop_assert!(w.expand(n).is_err());
                }
            } else if i64::from(n) <= model {
                w.consume(n).unwrap();
                model -= i64::from(n);
            } else {
                prop_assert!(w.consume(n).is_err());
            }
            prop_assert_eq!(w.available(), model);
        }
    }
}
