//! Header-block assembly across HEADERS/PUSH_PROMISE + CONTINUATION
//! frames (RFC 7540 §4.3).

use h2wire::{ContinuationFrame, PrioritySpec, StreamId};

/// Error raised when the CONTINUATION discipline is violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssemblyError {
    /// A non-CONTINUATION frame arrived while a header block was open.
    InterleavedFrame,
    /// A CONTINUATION arrived with no open header block, or for a
    /// different stream.
    UnexpectedContinuation {
        /// Stream the stray frame named.
        stream: StreamId,
    },
}

impl std::fmt::Display for AssemblyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssemblyError::InterleavedFrame => {
                f.write_str("frame interleaved inside a header block")
            }
            AssemblyError::UnexpectedContinuation { stream } => {
                write!(f, "unexpected continuation on stream {stream}")
            }
        }
    }
}

impl std::error::Error for AssemblyError {}

/// What kind of block is being assembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// A request/response HEADERS block.
    Headers,
    /// A PUSH_PROMISE block; carries the promised stream.
    PushPromise {
        /// The stream reserved by the promise.
        promised: StreamId,
    },
}

/// A fully assembled header block, ready for HPACK decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompleteBlock {
    /// Stream the block belongs to.
    pub stream: StreamId,
    /// HEADERS or PUSH_PROMISE.
    pub kind: BlockKind,
    /// Concatenated HPACK fragment.
    pub fragment: Vec<u8>,
    /// END_STREAM from the initiating HEADERS frame.
    pub end_stream: bool,
    /// Priority fields from the initiating HEADERS frame.
    pub priority: Option<PrioritySpec>,
}

#[derive(Debug, Clone)]
struct Pending {
    block: CompleteBlock,
}

/// Assembles header blocks; at most one may be open at a time per
/// connection (RFC 7540 §4.3: header blocks are contiguous).
#[derive(Debug, Clone, Default)]
pub struct HeaderAssembler {
    pending: Option<Pending>,
}

impl HeaderAssembler {
    /// Creates an idle assembler.
    pub fn new() -> HeaderAssembler {
        HeaderAssembler::default()
    }

    /// `true` while a block is open (END_HEADERS not yet seen).
    pub fn in_progress(&self) -> bool {
        self.pending.is_some()
    }

    /// Octets accumulated so far in the open block (0 when idle).
    ///
    /// RFC 7540 never bounds a header block: a peer may stream
    /// CONTINUATION fragments forever while the receiver buffers them
    /// (the CONTINUATION-flood vector). Policy layers read this to decide
    /// when to give up on an unbounded block.
    pub fn accumulated(&self) -> usize {
        self.pending.as_ref().map_or(0, |p| p.block.fragment.len())
    }

    /// Starts a block from an initiating HEADERS/PUSH_PROMISE frame.
    ///
    /// # Errors
    ///
    /// [`AssemblyError::InterleavedFrame`] when a block is already open.
    pub fn start(
        &mut self,
        stream: StreamId,
        kind: BlockKind,
        fragment: &[u8],
        end_stream: bool,
        end_headers: bool,
        priority: Option<PrioritySpec>,
    ) -> Result<Option<CompleteBlock>, AssemblyError> {
        if self.pending.is_some() {
            return Err(AssemblyError::InterleavedFrame);
        }
        let block = CompleteBlock {
            stream,
            kind,
            fragment: fragment.to_vec(),
            end_stream,
            priority,
        };
        if end_headers {
            return Ok(Some(block));
        }
        self.pending = Some(Pending { block });
        Ok(None)
    }

    /// Feeds a CONTINUATION frame.
    ///
    /// # Errors
    ///
    /// [`AssemblyError::UnexpectedContinuation`] when no block is open or
    /// the stream does not match.
    pub fn continuation(
        &mut self,
        frame: &ContinuationFrame,
    ) -> Result<Option<CompleteBlock>, AssemblyError> {
        let Some(pending) = self.pending.as_mut() else {
            return Err(AssemblyError::UnexpectedContinuation {
                stream: frame.stream_id,
            });
        };
        if pending.block.stream != frame.stream_id {
            return Err(AssemblyError::UnexpectedContinuation {
                stream: frame.stream_id,
            });
        }
        pending.block.fragment.extend_from_slice(&frame.fragment);
        if frame.end_headers {
            // h2check: allow(panic) — `pending` was matched Some above
            return Ok(Some(self.pending.take().expect("pending exists").block));
        }
        Ok(None)
    }

    /// Reports whether a non-CONTINUATION frame is currently legal.
    ///
    /// # Errors
    ///
    /// [`AssemblyError::InterleavedFrame`] while a block is open.
    pub fn check_interleave(&self) -> Result<(), AssemblyError> {
        if self.pending.is_some() {
            Err(AssemblyError::InterleavedFrame)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn sid(v: u32) -> StreamId {
        StreamId::new(v)
    }

    #[test]
    fn single_frame_block_completes_immediately() {
        let mut asm = HeaderAssembler::new();
        let block = asm
            .start(sid(1), BlockKind::Headers, &[1, 2, 3], true, true, None)
            .unwrap()
            .unwrap();
        assert_eq!(block.fragment, vec![1, 2, 3]);
        assert!(block.end_stream);
        assert!(!asm.in_progress());
    }

    #[test]
    fn continuation_concatenates_in_order() {
        let mut asm = HeaderAssembler::new();
        assert!(asm
            .start(sid(1), BlockKind::Headers, &[1], false, false, None)
            .unwrap()
            .is_none());
        assert!(asm.in_progress());
        let c1 = ContinuationFrame {
            stream_id: sid(1),
            fragment: Bytes::from_static(&[2]),
            end_headers: false,
        };
        assert!(asm.continuation(&c1).unwrap().is_none());
        let c2 = ContinuationFrame {
            stream_id: sid(1),
            fragment: Bytes::from_static(&[3]),
            end_headers: true,
        };
        let block = asm.continuation(&c2).unwrap().unwrap();
        assert_eq!(block.fragment, vec![1, 2, 3]);
        assert!(!asm.in_progress());
    }

    #[test]
    fn interleaved_start_is_rejected() {
        let mut asm = HeaderAssembler::new();
        asm.start(sid(1), BlockKind::Headers, &[], false, false, None)
            .unwrap();
        let err = asm
            .start(sid(3), BlockKind::Headers, &[], false, true, None)
            .unwrap_err();
        assert_eq!(err, AssemblyError::InterleavedFrame);
        assert!(asm.check_interleave().is_err());
    }

    #[test]
    fn continuation_for_wrong_stream_is_rejected() {
        let mut asm = HeaderAssembler::new();
        asm.start(sid(1), BlockKind::Headers, &[], false, false, None)
            .unwrap();
        let stray = ContinuationFrame {
            stream_id: sid(3),
            fragment: Bytes::new(),
            end_headers: true,
        };
        assert_eq!(
            asm.continuation(&stray),
            Err(AssemblyError::UnexpectedContinuation { stream: sid(3) })
        );
    }

    #[test]
    fn continuation_without_block_is_rejected() {
        let mut asm = HeaderAssembler::new();
        let stray = ContinuationFrame {
            stream_id: sid(1),
            fragment: Bytes::new(),
            end_headers: true,
        };
        assert!(asm.continuation(&stray).is_err());
    }

    #[test]
    fn push_promise_block_keeps_promised_stream() {
        let mut asm = HeaderAssembler::new();
        let block = asm
            .start(
                sid(1),
                BlockKind::PushPromise { promised: sid(2) },
                &[9],
                false,
                true,
                None,
            )
            .unwrap()
            .unwrap();
        assert_eq!(block.kind, BlockKind::PushPromise { promised: sid(2) });
        assert!(!block.end_stream);
    }
}
