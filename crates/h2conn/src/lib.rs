//! # h2conn — HTTP/2 connection and stream state machine
//!
//! The protocol substrate between the wire format ([`h2wire`]) and the
//! endpoints built in this workspace (`h2server`'s quirk-driven server
//! engine, `h2scope`'s frame-level probes):
//!
//! * [`window`] — flow-control window arithmetic with overflow detection.
//! * [`priority`] — the RFC 7540 §5.3 dependency tree, reprioritization
//!   (including the §5.3.3 descendant-move rule), self-dependency
//!   detection, and a parent-before-children weighted scheduler.
//! * [`stream`] — the §5.1 stream lifecycle and the per-connection stream
//!   table.
//! * [`assembler`] — HEADERS/CONTINUATION block assembly.
//! * [`core`] — [`ConnectionCore`], the sans-IO state machine that applies
//!   received frames mechanically and reports policy-relevant conditions
//!   (zero window updates, overflows, self-dependencies, concurrency
//!   violations) as [`CoreEvent`]s for the caller to react to. That split
//!   is what lets one engine faithfully model six servers with different
//!   RFC deviations.
//!
//! ```
//! use h2conn::{ConnectionCore, CoreEvent, EffectiveSettings, Role};
//! use h2hpack::{EncoderOptions, Header};
//! use h2wire::StreamId;
//!
//! # fn main() -> Result<(), h2conn::ConnError> {
//! let mut client = ConnectionCore::new(
//!     Role::Client, EffectiveSettings::default(), EncoderOptions::default());
//! let mut server = ConnectionCore::new(
//!     Role::Server, EffectiveSettings::default(), EncoderOptions::default());
//! let request = vec![Header::new(":method", "GET"), Header::new(":path", "/")];
//! for frame in client.encode_headers(StreamId::new(1), &request, true, None) {
//!     let events = server.recv_bytes(&frame.to_bytes())?;
//!     assert!(matches!(events[0], CoreEvent::HeadersReceived { .. }));
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assembler;
pub mod core;
pub mod priority;
pub mod stream;
pub mod window;

pub use crate::core::{ConnError, ConnectionCore, CoreEvent, EffectiveSettings, Role, WindowScope};
pub use assembler::{AssemblyError, BlockKind, CompleteBlock, HeaderAssembler};
pub use priority::{PriorityTree, SelfDependencyError};
pub use stream::{CloseReason, Stream, StreamMap, StreamState};
pub use window::{FlowWindow, WindowError, DEFAULT_WINDOW, MAX_WINDOW};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConnectionCore>();
        assert_send_sync::<PriorityTree>();
        assert_send_sync::<StreamMap>();
        assert_send_sync::<CoreEvent>();
    }
}
