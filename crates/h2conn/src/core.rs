//! The sans-IO connection core.
//!
//! [`ConnectionCore`] performs all *mechanical* HTTP/2 bookkeeping —
//! settings application, HPACK contexts, stream lifecycle, flow-control
//! accounting, priority-tree maintenance, CONTINUATION assembly — while
//! deliberately leaving *policy* to the caller. Conditions that RFC 7540
//! says an endpoint "MUST treat as an error" (zero window updates, window
//! overflow, self-dependent streams, concurrency violations) are surfaced
//! as [`CoreEvent`]s rather than handled internally, because the entire
//! point of the paper is that real servers react to those conditions
//! differently: some send RST_STREAM, some GOAWAY, some silently ignore
//! them. The server engine in `h2server` maps events to reactions using
//! its per-server behavior profile; the RFC-strict profile is just one
//! particular mapping.

use bytes::Bytes;

use h2hpack::{Decoder as HpackDecoder, Encoder as HpackEncoder, EncoderOptions, Header};
use h2wire::settings::{
    DEFAULT_HEADER_TABLE_SIZE, DEFAULT_INITIAL_WINDOW_SIZE, DEFAULT_MAX_FRAME_SIZE,
};
use h2wire::{
    ContinuationFrame, DataFrame, DecodeFrameError, ErrorCode, Frame, FrameDecoder, HeadersFrame,
    PrioritySpec, PushPromiseFrame, SettingId, Settings, StreamId,
};

use crate::assembler::{AssemblyError, BlockKind, HeaderAssembler};
use crate::priority::PriorityTree;
use crate::stream::{StreamMap, StreamState};
use crate::window::FlowWindow;

/// Which end of the connection this core implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The request initiator.
    Client,
    /// The responder.
    Server,
}

/// The effective value of every SETTINGS parameter for one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EffectiveSettings {
    /// `SETTINGS_HEADER_TABLE_SIZE`.
    pub header_table_size: u32,
    /// `SETTINGS_ENABLE_PUSH`.
    pub enable_push: bool,
    /// `SETTINGS_MAX_CONCURRENT_STREAMS` (`None` = unlimited).
    pub max_concurrent_streams: Option<u32>,
    /// `SETTINGS_INITIAL_WINDOW_SIZE`.
    pub initial_window_size: u32,
    /// `SETTINGS_MAX_FRAME_SIZE`.
    pub max_frame_size: u32,
    /// `SETTINGS_MAX_HEADER_LIST_SIZE` (`None` = unlimited).
    pub max_header_list_size: Option<u32>,
}

impl Default for EffectiveSettings {
    fn default() -> EffectiveSettings {
        EffectiveSettings {
            header_table_size: DEFAULT_HEADER_TABLE_SIZE,
            enable_push: true,
            max_concurrent_streams: None,
            initial_window_size: DEFAULT_INITIAL_WINDOW_SIZE,
            max_frame_size: DEFAULT_MAX_FRAME_SIZE,
            max_header_list_size: None,
        }
    }
}

impl EffectiveSettings {
    /// Applies a received parameter list in order.
    pub fn apply(&mut self, settings: &Settings) {
        for (id, value) in settings.iter() {
            match id {
                SettingId::HeaderTableSize => self.header_table_size = value,
                SettingId::EnablePush => self.enable_push = value == 1,
                SettingId::MaxConcurrentStreams => self.max_concurrent_streams = Some(value),
                SettingId::InitialWindowSize => self.initial_window_size = value,
                SettingId::MaxFrameSize => self.max_frame_size = value,
                SettingId::MaxHeaderListSize => self.max_header_list_size = Some(value),
                SettingId::Unknown(_) => {}
            }
        }
    }
}

/// Flow-control window scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowScope {
    /// The connection window (stream 0).
    Connection,
    /// One stream's window.
    Stream(StreamId),
}

/// Something the peer did that the policy layer must react to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreEvent {
    /// A (non-ack) SETTINGS frame was applied; an ack should be sent.
    RemoteSettings {
        /// The parameters as received.
        settings: Settings,
    },
    /// The peer acknowledged our SETTINGS.
    SettingsAcked,
    /// A complete request/response header block arrived.
    HeadersReceived {
        /// Stream carrying the block.
        stream: StreamId,
        /// Decoded header list.
        headers: Vec<Header>,
        /// END_STREAM was set.
        end_stream: bool,
        /// Priority fields on the initiating HEADERS frame.
        priority: Option<PrioritySpec>,
    },
    /// A HEADERS/PUSH_PROMISE/CONTINUATION fragment extended a header
    /// block that is still open (END_HEADERS not yet seen). RFC 7540
    /// §4.3 places no bound on a block's total size, which is exactly
    /// the CONTINUATION-flood vector: policy layers watch `accumulated`
    /// to decide when an unbounded block has become abusive.
    HeaderBlockProgress {
        /// Stream the open block belongs to.
        stream: StreamId,
        /// Total fragment octets buffered so far.
        accumulated: u32,
    },
    /// A complete PUSH_PROMISE block arrived.
    PushPromiseReceived {
        /// Associated (client-initiated) stream.
        stream: StreamId,
        /// Reserved stream for the pushed response.
        promised: StreamId,
        /// Decoded promised-request headers.
        headers: Vec<Header>,
    },
    /// DATA arrived and was charged against the receive windows.
    DataReceived {
        /// Stream carrying the data.
        stream: StreamId,
        /// Payload (padding stripped).
        data: Bytes,
        /// END_STREAM was set.
        end_stream: bool,
        /// Octets charged against flow control (includes padding).
        flow_controlled_len: u32,
    },
    /// The peer sent more flow-controlled octets than the window held.
    FlowViolation {
        /// The violated scope.
        scope: WindowScope,
    },
    /// A PING request arrived; policy should echo it with ACK.
    PingReceived {
        /// Opaque payload.
        payload: [u8; 8],
    },
    /// A PING acknowledgement arrived.
    PingAcked {
        /// Opaque payload.
        payload: [u8; 8],
    },
    /// The peer reset a stream.
    RstStreamReceived {
        /// The reset stream.
        stream: StreamId,
        /// Error code carried.
        code: ErrorCode,
    },
    /// The peer is shutting the connection down.
    GoawayReceived {
        /// Highest stream the peer may have processed.
        last_stream: StreamId,
        /// Error code carried.
        code: ErrorCode,
        /// Opaque debug data.
        debug: Bytes,
    },
    /// A WINDOW_UPDATE was applied successfully.
    WindowUpdated {
        /// Which window grew.
        scope: WindowScope,
        /// The increment.
        increment: u32,
    },
    /// A WINDOW_UPDATE with a zero increment arrived (RFC 7540 §6.9 calls
    /// for a stream/connection error; real servers differ — the paper's
    /// §III-B3 probe).
    ZeroWindowUpdate {
        /// Which window it named.
        scope: WindowScope,
    },
    /// A WINDOW_UPDATE pushed a send window past 2^31-1 (§6.9.1; the
    /// paper's §III-B4 probe).
    WindowOverflow {
        /// Which window overflowed.
        scope: WindowScope,
    },
    /// A PRIORITY frame (or HEADERS priority fields) changed the tree.
    PriorityChanged {
        /// The re-prioritized stream.
        stream: StreamId,
    },
    /// A stream was declared dependent on itself (§5.3.1; the paper's
    /// §III-C2 probe).
    SelfDependency {
        /// The offending stream.
        stream: StreamId,
    },
    /// A new remote stream would exceed our announced
    /// `SETTINGS_MAX_CONCURRENT_STREAMS`.
    ConcurrencyExceeded {
        /// The over-limit stream.
        stream: StreamId,
    },
    /// An extension frame was ignored (RFC 7540 §4.1).
    UnknownFrameIgnored {
        /// Wire type byte.
        kind: u8,
    },
}

/// A fatal connection-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnError {
    /// Malformed frame.
    Decode(DecodeFrameError),
    /// Header compression state lost.
    Compression(h2hpack::HpackDecodeError),
    /// CONTINUATION discipline violated.
    Assembly(AssemblyError),
}

impl std::fmt::Display for ConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnError::Decode(e) => write!(f, "frame decode error: {e}"),
            ConnError::Compression(e) => write!(f, "header compression error: {e}"),
            ConnError::Assembly(e) => write!(f, "header block assembly error: {e}"),
        }
    }
}

impl std::error::Error for ConnError {}

impl From<DecodeFrameError> for ConnError {
    fn from(e: DecodeFrameError) -> ConnError {
        ConnError::Decode(e)
    }
}

impl From<h2hpack::HpackDecodeError> for ConnError {
    fn from(e: h2hpack::HpackDecodeError) -> ConnError {
        ConnError::Compression(e)
    }
}

impl From<AssemblyError> for ConnError {
    fn from(e: AssemblyError) -> ConnError {
        ConnError::Assembly(e)
    }
}

impl ConnError {
    /// The error code a conforming endpoint would put in GOAWAY.
    pub fn h2_error_code(&self) -> ErrorCode {
        match self {
            ConnError::Decode(e) => e.h2_error_code(),
            ConnError::Compression(_) => ErrorCode::CompressionError,
            ConnError::Assembly(_) => ErrorCode::ProtocolError,
        }
    }
}

/// The sans-IO HTTP/2 connection state machine.
#[derive(Debug)]
pub struct ConnectionCore {
    role: Role,
    local: EffectiveSettings,
    remote: EffectiveSettings,
    /// HPACK contexts: `encoder` compresses what we send, `decoder`
    /// decompresses what we receive.
    encoder: HpackEncoder,
    decoder: HpackDecoder,
    frame_decoder: FrameDecoder,
    streams: StreamMap,
    priority: PriorityTree,
    conn_send: FlowWindow,
    conn_recv: FlowWindow,
    assembler: HeaderAssembler,
    next_push_id: u32,
    goaway_received: bool,
    /// Ceiling applied to the peer's `SETTINGS_HEADER_TABLE_SIZE` before
    /// resizing our encoder's dynamic table. RFC 7541 lets an encoder use
    /// *up to* the peer's limit; a prudent implementation caps it (the
    /// default, 4,096) while an obedient one honors any peer value — the
    /// memory-pressure vector the paper's discussion section warns about.
    encoder_table_cap: u32,
    /// Observability handle (off by default; a no-op unless enabled).
    obs: h2obs::Obs,
    /// HPACK evictions already reported to `obs`, so deltas are exact.
    evictions_reported: u64,
}

impl ConnectionCore {
    /// Creates a core for `role` announcing `local` settings, with the
    /// given HPACK encoder options (the `h2server` engine uses the options
    /// to model per-server indexing policies).
    pub fn new(role: Role, local: EffectiveSettings, encoder: EncoderOptions) -> ConnectionCore {
        let mut frame_decoder = FrameDecoder::new();
        frame_decoder.set_max_frame_size(local.max_frame_size);
        ConnectionCore {
            role,
            local,
            remote: EffectiveSettings::default(),
            encoder: HpackEncoder::with_options(encoder),
            decoder: HpackDecoder::with_table_size(local.header_table_size),
            frame_decoder,
            streams: StreamMap::new(),
            priority: PriorityTree::new(),
            conn_send: FlowWindow::new(DEFAULT_INITIAL_WINDOW_SIZE),
            conn_recv: FlowWindow::new(DEFAULT_INITIAL_WINDOW_SIZE),
            assembler: HeaderAssembler::new(),
            next_push_id: 2,
            goaway_received: false,
            encoder_table_cap: DEFAULT_HEADER_TABLE_SIZE,
            obs: h2obs::Obs::off(),
            evictions_reported: 0,
        }
    }

    /// Attaches an observability handle; `Obs::off()` (the default)
    /// records nothing.
    pub fn set_obs(&mut self, obs: h2obs::Obs) {
        self.obs = obs;
    }

    /// Reports the HPACK eviction delta accrued since the last call to
    /// the observability handle (both directions: our encoder table and
    /// our decoder table).
    fn report_hpack_evictions(&mut self) {
        let total = self.encoder.table().evictions() + self.decoder.table().evictions();
        self.obs.hpack_evictions(total - self.evictions_reported);
        self.evictions_reported = total;
    }

    /// Sets the ceiling applied to peer-requested encoder table sizes.
    pub fn set_encoder_table_cap(&mut self, cap: u32) {
        self.encoder_table_cap = cap;
    }

    /// This endpoint's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Our announced settings.
    pub fn local_settings(&self) -> &EffectiveSettings {
        &self.local
    }

    /// The peer's most recent settings.
    pub fn remote_settings(&self) -> &EffectiveSettings {
        &self.remote
    }

    /// The stream table.
    pub fn streams(&self) -> &StreamMap {
        &self.streams
    }

    /// The stream table, mutably.
    pub fn streams_mut(&mut self) -> &mut StreamMap {
        &mut self.streams
    }

    /// The priority tree.
    pub fn priority(&self) -> &PriorityTree {
        &self.priority
    }

    /// The priority tree, mutably (the server engine schedules from it).
    pub fn priority_mut(&mut self) -> &mut PriorityTree {
        &mut self.priority
    }

    /// Octets we may still send at connection scope.
    pub fn connection_send_window(&self) -> i64 {
        self.conn_send.available()
    }

    /// Octets the peer may still send at connection scope.
    pub fn connection_recv_window(&self) -> i64 {
        self.conn_recv.available()
    }

    /// `true` after GOAWAY arrived.
    pub fn goaway_received(&self) -> bool {
        self.goaway_received
    }

    /// Octets buffered in the currently open header block (0 when no
    /// block is open). This is the memory a CONTINUATION flood pins.
    pub fn header_block_accumulated(&self) -> usize {
        self.assembler.accumulated()
    }

    /// Feeds raw transport bytes, yielding events for every complete
    /// frame.
    ///
    /// # Errors
    ///
    /// The first [`ConnError`] encountered; callers should tear down the
    /// connection with the code from [`ConnError::h2_error_code`].
    pub fn recv_bytes(&mut self, bytes: &[u8]) -> Result<Vec<CoreEvent>, ConnError> {
        self.frame_decoder.feed(bytes);
        let mut events = Vec::new();
        loop {
            match self.frame_decoder.next_frame() {
                Ok(Some(frame)) => events.extend(self.handle_frame(frame)?),
                Ok(None) => break,
                Err(e) => return Err(ConnError::Decode(e)),
            }
        }
        self.report_hpack_evictions();
        Ok(events)
    }

    /// Applies one received frame.
    ///
    /// # Errors
    ///
    /// See [`ConnectionCore::recv_bytes`].
    pub fn handle_frame(&mut self, frame: Frame) -> Result<Vec<CoreEvent>, ConnError> {
        self.obs.server_frame(frame.kind().to_u8());
        // CONTINUATION discipline: while a header block is open, only
        // CONTINUATION for the same stream is legal.
        if !matches!(frame, Frame::Continuation(_)) {
            self.assembler.check_interleave()?;
        }
        let mut events = Vec::new();
        match frame {
            Frame::Settings(f) => {
                if f.ack {
                    events.push(CoreEvent::SettingsAcked);
                } else {
                    self.apply_remote_settings(&f.settings, &mut events);
                    events.push(CoreEvent::RemoteSettings {
                        settings: f.settings,
                    });
                }
            }
            Frame::WindowUpdate(f) => {
                if f.increment == 0 {
                    let scope = if f.stream_id.is_connection() {
                        WindowScope::Connection
                    } else {
                        WindowScope::Stream(f.stream_id)
                    };
                    events.push(CoreEvent::ZeroWindowUpdate { scope });
                } else if f.stream_id.is_connection() {
                    match self.conn_send.expand(f.increment) {
                        Ok(()) => events.push(CoreEvent::WindowUpdated {
                            scope: WindowScope::Connection,
                            increment: f.increment,
                        }),
                        Err(_) => events.push(CoreEvent::WindowOverflow {
                            scope: WindowScope::Connection,
                        }),
                    }
                } else {
                    let (send_init, recv_init) = (
                        self.remote.initial_window_size,
                        self.local.initial_window_size,
                    );
                    let stream = self
                        .streams
                        .get_or_create(f.stream_id, send_init, recv_init);
                    match stream.send_window.expand(f.increment) {
                        Ok(()) => events.push(CoreEvent::WindowUpdated {
                            scope: WindowScope::Stream(f.stream_id),
                            increment: f.increment,
                        }),
                        Err(_) => events.push(CoreEvent::WindowOverflow {
                            scope: WindowScope::Stream(f.stream_id),
                        }),
                    }
                }
            }
            Frame::Ping(f) => {
                if f.ack {
                    events.push(CoreEvent::PingAcked { payload: f.payload });
                } else {
                    events.push(CoreEvent::PingReceived { payload: f.payload });
                }
            }
            Frame::Headers(f) => {
                if let Some(block) = self.assembler.start(
                    f.stream_id,
                    BlockKind::Headers,
                    &f.fragment,
                    f.end_stream,
                    f.end_headers,
                    f.priority,
                )? {
                    self.finish_block(block, &mut events)?;
                } else {
                    events.push(CoreEvent::HeaderBlockProgress {
                        stream: f.stream_id,
                        accumulated: self.assembler.accumulated() as u32,
                    });
                }
            }
            Frame::PushPromise(f) => {
                if let Some(block) = self.assembler.start(
                    f.stream_id,
                    BlockKind::PushPromise {
                        promised: f.promised_stream_id,
                    },
                    &f.fragment,
                    false,
                    f.end_headers,
                    None,
                )? {
                    self.finish_block(block, &mut events)?;
                } else {
                    events.push(CoreEvent::HeaderBlockProgress {
                        stream: f.stream_id,
                        accumulated: self.assembler.accumulated() as u32,
                    });
                }
            }
            Frame::Continuation(f) => {
                if let Some(block) = self.assembler.continuation(&f)? {
                    self.finish_block(block, &mut events)?;
                } else {
                    events.push(CoreEvent::HeaderBlockProgress {
                        stream: f.stream_id,
                        accumulated: self.assembler.accumulated() as u32,
                    });
                }
            }
            Frame::Data(f) => {
                let fcl = f.flow_controlled_len();
                if self.conn_recv.consume(fcl).is_err() {
                    events.push(CoreEvent::FlowViolation {
                        scope: WindowScope::Connection,
                    });
                    return Ok(events);
                }
                let (send_init, recv_init) = (
                    self.remote.initial_window_size,
                    self.local.initial_window_size,
                );
                let stream = self
                    .streams
                    .get_or_create(f.stream_id, send_init, recv_init);
                if stream.recv_window.consume(fcl).is_err() {
                    events.push(CoreEvent::FlowViolation {
                        scope: WindowScope::Stream(f.stream_id),
                    });
                    return Ok(events);
                }
                if f.end_stream {
                    stream.recv_end_stream();
                }
                events.push(CoreEvent::DataReceived {
                    stream: f.stream_id,
                    data: f.data,
                    end_stream: f.end_stream,
                    flow_controlled_len: fcl,
                });
            }
            Frame::Priority(f) => match self.priority.declare(f.stream_id, f.spec) {
                Ok(()) => events.push(CoreEvent::PriorityChanged {
                    stream: f.stream_id,
                }),
                Err(_) => events.push(CoreEvent::SelfDependency {
                    stream: f.stream_id,
                }),
            },
            Frame::RstStream(f) => {
                let (send_init, recv_init) = (
                    self.remote.initial_window_size,
                    self.local.initial_window_size,
                );
                let stream = self
                    .streams
                    .get_or_create(f.stream_id, send_init, recv_init);
                stream.recv_reset(f.code);
                events.push(CoreEvent::RstStreamReceived {
                    stream: f.stream_id,
                    code: f.code,
                });
            }
            Frame::Goaway(f) => {
                self.goaway_received = true;
                events.push(CoreEvent::GoawayReceived {
                    last_stream: f.last_stream_id,
                    code: f.code,
                    debug: f.debug_data,
                });
            }
            Frame::Unknown(f) => events.push(CoreEvent::UnknownFrameIgnored { kind: f.kind }),
        }
        Ok(events)
    }

    fn apply_remote_settings(&mut self, settings: &Settings, events: &mut Vec<CoreEvent>) {
        let old_window = self.remote.initial_window_size;
        self.remote.apply(settings);
        // §6.9.2: an INITIAL_WINDOW_SIZE change retroactively adjusts every
        // stream send window by the delta (the connection window is NOT
        // affected — the paper's Algorithm 1 relies on this asymmetry).
        if let Some(new_window) = settings.get(SettingId::InitialWindowSize) {
            let delta = i64::from(new_window) - i64::from(old_window);
            let overflowed: Vec<StreamId> = self
                .streams
                .iter_mut()
                .filter_map(|s| {
                    if s.send_window.adjust(delta).is_err() {
                        Some(s.id)
                    } else {
                        None
                    }
                })
                .collect();
            for id in overflowed {
                events.push(CoreEvent::WindowOverflow {
                    scope: WindowScope::Stream(id),
                });
            }
        }
        // The peer's header-table limit bounds our encoder's dynamic
        // table, subject to our own prudence cap.
        if let Some(size) = settings.get(SettingId::HeaderTableSize) {
            let target = size.min(self.encoder_table_cap);
            if target != self.encoder.table().max_size() {
                self.encoder.resize_table(target);
            }
        }
    }

    fn finish_block(
        &mut self,
        block: crate::assembler::CompleteBlock,
        events: &mut Vec<CoreEvent>,
    ) -> Result<(), ConnError> {
        let headers = self.decoder.decode_block(&block.fragment)?;
        let (send_init, recv_init) = (
            self.remote.initial_window_size,
            self.local.initial_window_size,
        );
        match block.kind {
            BlockKind::Headers => {
                let is_new = self.streams.get(block.stream).is_none();
                if is_new && self.role == Role::Server {
                    if let Some(max) = self.local.max_concurrent_streams {
                        if self.streams.active_count() as u32 >= max {
                            events.push(CoreEvent::ConcurrencyExceeded {
                                stream: block.stream,
                            });
                        }
                    }
                }
                if let Some(spec) = block.priority {
                    match self.priority.declare(block.stream, spec) {
                        Ok(()) => {}
                        Err(_) => events.push(CoreEvent::SelfDependency {
                            stream: block.stream,
                        }),
                    }
                } else if !self.priority.contains(block.stream) {
                    let _ = self
                        .priority
                        .declare(block.stream, PrioritySpec::default_spec());
                }
                let stream = self
                    .streams
                    .get_or_create(block.stream, send_init, recv_init);
                stream.recv_headers(block.end_stream);
                events.push(CoreEvent::HeadersReceived {
                    stream: block.stream,
                    headers,
                    end_stream: block.end_stream,
                    priority: block.priority,
                });
            }
            BlockKind::PushPromise { promised } => {
                let stream = self.streams.get_or_create(promised, send_init, recv_init);
                stream.state = StreamState::ReservedRemote;
                events.push(CoreEvent::PushPromiseReceived {
                    stream: block.stream,
                    promised,
                    headers,
                });
            }
        }
        Ok(())
    }

    // ----- send-side helpers -------------------------------------------

    /// Encodes a header list into HEADERS (+ CONTINUATION) frames sized to
    /// the peer's `SETTINGS_MAX_FRAME_SIZE`, applying the local stream
    /// state transition.
    pub fn encode_headers(
        &mut self,
        stream_id: StreamId,
        headers: &[Header],
        end_stream: bool,
        priority: Option<PrioritySpec>,
    ) -> Vec<Frame> {
        let block = self.encoder.encode_block(headers);
        self.report_hpack_evictions();
        let max = self.remote.max_frame_size as usize;
        let stream = self.streams.get_or_create(
            stream_id,
            self.remote.initial_window_size,
            self.local.initial_window_size,
        );
        stream.send_headers(end_stream);
        let mut frames = Vec::new();
        if block.len() <= max {
            frames.push(Frame::Headers(HeadersFrame {
                stream_id,
                fragment: Bytes::from(block),
                end_stream,
                end_headers: true,
                priority,
                pad_len: None,
            }));
            return frames;
        }
        let mut chunks = block.chunks(max);
        // h2check: allow(panic) — the short-block case returned above
        let first = chunks.next().expect("block longer than max");
        frames.push(Frame::Headers(HeadersFrame {
            stream_id,
            fragment: Bytes::copy_from_slice(first),
            end_stream,
            end_headers: false,
            priority,
            pad_len: None,
        }));
        let rest: Vec<&[u8]> = chunks.collect();
        for (i, chunk) in rest.iter().enumerate() {
            frames.push(Frame::Continuation(ContinuationFrame {
                stream_id,
                fragment: Bytes::copy_from_slice(chunk),
                end_headers: i == rest.len() - 1,
            }));
        }
        frames
    }

    /// Reserves the next even stream id and encodes a PUSH_PROMISE frame
    /// for it.
    pub fn encode_push_promise(
        &mut self,
        assoc_stream: StreamId,
        request_headers: &[Header],
    ) -> (StreamId, Frame) {
        let promised = StreamId::new(self.next_push_id);
        self.next_push_id += 2;
        let block = self.encoder.encode_block(request_headers);
        let stream = self.streams.get_or_create(
            promised,
            self.remote.initial_window_size,
            self.local.initial_window_size,
        );
        stream.state = StreamState::ReservedLocal;
        (
            promised,
            Frame::PushPromise(PushPromiseFrame {
                stream_id: assoc_stream,
                promised_stream_id: promised,
                fragment: Bytes::from(block),
                end_headers: true,
                pad_len: None,
            }),
        )
    }

    /// Octets that may be sent as DATA on `stream` right now: the minimum
    /// of the connection window, the stream window, and the peer's max
    /// frame size.
    pub fn sendable_on(&self, stream_id: StreamId) -> u32 {
        let Some(stream) = self.streams.get(stream_id) else {
            return 0;
        };
        if !stream.state.can_send() {
            return 0;
        }
        let cap = self.remote.max_frame_size;
        let by_stream = stream.send_window.sendable(cap);
        self.conn_send.sendable(by_stream)
    }

    /// Builds a DATA frame and charges both send windows.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds [`ConnectionCore::sendable_on`]; callers
    /// must size chunks first (the scheduler does).
    pub fn send_data(&mut self, stream_id: StreamId, data: Bytes, end_stream: bool) -> Frame {
        let len = data.len() as u32;
        self.conn_send
            .consume(len)
            // h2check: allow(panic) — documented caller contract (# Panics)
            .expect("caller respected connection window");
        // h2check: allow(panic) — documented caller contract (# Panics)
        let stream = self.streams.get_mut(stream_id).expect("stream exists");
        stream
            .send_window
            .consume(len)
            // h2check: allow(panic) — documented caller contract (# Panics)
            .expect("caller respected stream window");
        if end_stream {
            stream.send_end_stream();
        }
        Frame::Data(DataFrame {
            stream_id,
            data,
            end_stream,
            pad_len: None,
        })
    }

    /// Charges the receive windows back up and emits WINDOW_UPDATE frames,
    /// the standard receiver behavior after consuming data.
    pub fn replenish_recv_windows(&mut self, stream_id: StreamId, octets: u32) -> Vec<Frame> {
        let mut frames = Vec::new();
        if octets == 0 {
            return frames;
        }
        if self.conn_recv.expand(octets).is_ok() {
            frames.push(Frame::WindowUpdate(h2wire::WindowUpdateFrame {
                stream_id: StreamId::CONNECTION,
                increment: octets,
            }));
        }
        if let Some(stream) = self.streams.get_mut(stream_id) {
            if stream.recv_window.expand(octets).is_ok() {
                frames.push(Frame::WindowUpdate(h2wire::WindowUpdateFrame {
                    stream_id,
                    increment: octets,
                }));
            }
        }
        frames
    }

    /// Marks a stream reset locally (caller emits the RST_STREAM frame).
    pub fn reset_stream(&mut self, stream_id: StreamId, code: ErrorCode) {
        if let Some(stream) = self.streams.get_mut(stream_id) {
            stream.send_reset(code);
        }
    }

    /// Updates our announced settings (affects decode limits and the
    /// initial window applied to *newly created* streams, plus a
    /// retroactive delta on existing receive windows per §6.9.2).
    pub fn set_local_settings(&mut self, settings: EffectiveSettings) {
        let delta =
            i64::from(settings.initial_window_size) - i64::from(self.local.initial_window_size);
        if delta != 0 {
            for stream in self.streams.iter_mut() {
                let _ = stream.recv_window.adjust(delta);
            }
        }
        self.frame_decoder
            .set_max_frame_size(settings.max_frame_size);
        self.decoder
            .set_protocol_max_table_size(settings.header_table_size);
        self.local = settings;
    }

    /// Direct access to the HPACK encoder (the HPACK probe inspects it).
    pub fn hpack_encoder(&self) -> &HpackEncoder {
        &self.encoder
    }

    /// Direct mutable access to the HPACK encoder.
    pub fn hpack_encoder_mut(&mut self) -> &mut HpackEncoder {
        &mut self.encoder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2wire::{PingFrame, SettingsFrame, WindowUpdateFrame};

    fn sid(v: u32) -> StreamId {
        StreamId::new(v)
    }

    fn server() -> ConnectionCore {
        ConnectionCore::new(
            Role::Server,
            EffectiveSettings::default(),
            EncoderOptions::default(),
        )
    }

    fn client_headers() -> Vec<Header> {
        vec![
            Header::new(":method", "GET"),
            Header::new(":scheme", "https"),
            Header::new(":path", "/"),
            Header::new(":authority", "example.com"),
        ]
    }

    fn feed(core: &mut ConnectionCore, frame: Frame) -> Vec<CoreEvent> {
        core.recv_bytes(&frame.to_bytes())
            .expect("no connection error")
    }

    #[test]
    fn settings_round_trip_updates_remote_view() {
        let mut core = server();
        let settings = Settings::new()
            .with(SettingId::InitialWindowSize, 1)
            .with(SettingId::MaxConcurrentStreams, 7);
        let events = feed(&mut core, Frame::Settings(SettingsFrame::from(settings)));
        assert!(matches!(events[0], CoreEvent::RemoteSettings { .. }));
        assert_eq!(core.remote_settings().initial_window_size, 1);
        assert_eq!(core.remote_settings().max_concurrent_streams, Some(7));
    }

    #[test]
    fn initial_window_change_adjusts_existing_stream_send_windows() {
        let mut core = server();
        // Open a stream first.
        let mut client = ConnectionCore::new(
            Role::Client,
            EffectiveSettings::default(),
            EncoderOptions::default(),
        );
        for frame in client.encode_headers(sid(1), &client_headers(), true, None) {
            feed(&mut core, frame);
        }
        assert_eq!(
            core.streams().get(sid(1)).unwrap().send_window.available(),
            65_535
        );
        let settings = Settings::new().with(SettingId::InitialWindowSize, 10);
        feed(&mut core, Frame::Settings(SettingsFrame::from(settings)));
        assert_eq!(
            core.streams().get(sid(1)).unwrap().send_window.available(),
            10
        );
        // The connection window is untouched (Algorithm 1 exploits this).
        assert_eq!(core.connection_send_window(), 65_535);
    }

    #[test]
    fn zero_window_update_is_reported_not_applied() {
        let mut core = server();
        let events = feed(
            &mut core,
            Frame::WindowUpdate(WindowUpdateFrame {
                stream_id: sid(0),
                increment: 0,
            }),
        );
        assert_eq!(
            events,
            vec![CoreEvent::ZeroWindowUpdate {
                scope: WindowScope::Connection
            }]
        );
        assert_eq!(core.connection_send_window(), 65_535);
    }

    #[test]
    fn window_overflow_is_reported() {
        let mut core = server();
        let events = feed(
            &mut core,
            Frame::WindowUpdate(WindowUpdateFrame {
                stream_id: sid(0),
                increment: 0x7fff_ffff,
            }),
        );
        assert_eq!(
            events,
            vec![CoreEvent::WindowOverflow {
                scope: WindowScope::Connection
            }]
        );
    }

    #[test]
    fn ping_request_and_ack_events() {
        let mut core = server();
        let events = feed(&mut core, Frame::Ping(PingFrame::request(*b"h2scope!")));
        assert_eq!(
            events,
            vec![CoreEvent::PingReceived {
                payload: *b"h2scope!"
            }]
        );
        let events = feed(
            &mut core,
            Frame::Ping(PingFrame {
                ack: true,
                payload: [0; 8],
            }),
        );
        assert_eq!(events, vec![CoreEvent::PingAcked { payload: [0; 8] }]);
    }

    #[test]
    fn headers_decode_and_open_stream() {
        let mut core = server();
        let mut client = ConnectionCore::new(
            Role::Client,
            EffectiveSettings::default(),
            EncoderOptions::default(),
        );
        let frames = client.encode_headers(sid(1), &client_headers(), true, None);
        let mut all = Vec::new();
        for frame in frames {
            all.extend(feed(&mut core, frame));
        }
        match &all[0] {
            CoreEvent::HeadersReceived {
                stream,
                headers,
                end_stream,
                ..
            } => {
                assert_eq!(*stream, sid(1));
                assert!(end_stream);
                assert_eq!(headers[0], Header::new(":method", "GET"));
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(
            core.streams().get(sid(1)).unwrap().state,
            StreamState::HalfClosedRemote
        );
    }

    #[test]
    fn oversized_header_block_splits_into_continuations() {
        let mut client = ConnectionCore::new(
            Role::Client,
            EffectiveSettings::default(),
            EncoderOptions::default(),
        );
        // Shrink what the peer accepts to force splitting.
        let settings = Settings::new().with(SettingId::MaxFrameSize, 16_384);
        client.remote.apply(&settings);
        client.remote.max_frame_size = 30; // direct for test purposes
        let mut headers = client_headers();
        headers.push(Header::new("x-long", "v".repeat(200)));
        let frames = client.encode_headers(sid(1), &headers, true, None);
        assert!(frames.len() > 1);
        assert!(matches!(frames[0], Frame::Headers(ref h) if !h.end_headers));
        assert!(matches!(frames.last().unwrap(), Frame::Continuation(c) if c.end_headers));

        // And the server reassembles them, reporting progress while the
        // block is open.
        let mut core = server();
        let mut events = Vec::new();
        for frame in frames {
            events.extend(feed(&mut core, frame));
        }
        assert!(matches!(
            events[0],
            CoreEvent::HeaderBlockProgress { accumulated, .. } if accumulated > 0
        ));
        assert!(events
            .iter()
            .any(|e| matches!(e, CoreEvent::HeadersReceived { .. })));
    }

    #[test]
    fn interleaved_frame_during_block_is_fatal() {
        let mut core = server();
        let frame = Frame::Headers(HeadersFrame {
            stream_id: sid(1),
            fragment: Bytes::from_static(&[0x82]),
            end_stream: false,
            end_headers: false, // block left open
            priority: None,
            pad_len: None,
        });
        feed(&mut core, frame);
        let err = core
            .recv_bytes(&Frame::Ping(PingFrame::request([0; 8])).to_bytes())
            .unwrap_err();
        assert!(matches!(
            err,
            ConnError::Assembly(AssemblyError::InterleavedFrame)
        ));
    }

    #[test]
    fn data_charges_both_recv_windows() {
        let mut core = server();
        let mut client = ConnectionCore::new(
            Role::Client,
            EffectiveSettings::default(),
            EncoderOptions::default(),
        );
        for frame in client.encode_headers(sid(1), &client_headers(), false, None) {
            feed(&mut core, frame);
        }
        let data = Frame::Data(DataFrame {
            stream_id: sid(1),
            data: Bytes::from(vec![0u8; 1_000]),
            end_stream: true,
            pad_len: None,
        });
        let events = feed(&mut core, data);
        assert!(matches!(
            events[0],
            CoreEvent::DataReceived {
                flow_controlled_len: 1_000,
                ..
            }
        ));
        assert_eq!(core.connection_recv_window(), 65_535 - 1_000);
        assert_eq!(
            core.streams().get(sid(1)).unwrap().recv_window.available(),
            65_535 - 1_000
        );
    }

    #[test]
    fn flow_violation_is_reported() {
        let mut core = server();
        let local = EffectiveSettings {
            initial_window_size: 10,
            ..Default::default()
        };
        core.set_local_settings(local);
        let mut client = ConnectionCore::new(
            Role::Client,
            EffectiveSettings::default(),
            EncoderOptions::default(),
        );
        for frame in client.encode_headers(sid(1), &client_headers(), false, None) {
            feed(&mut core, frame);
        }
        let data = Frame::Data(DataFrame {
            stream_id: sid(1),
            data: Bytes::from(vec![0u8; 11]),
            end_stream: false,
            pad_len: None,
        });
        let events = feed(&mut core, data);
        assert_eq!(
            events,
            vec![CoreEvent::FlowViolation {
                scope: WindowScope::Stream(sid(1))
            }]
        );
    }

    #[test]
    fn concurrency_limit_is_reported_for_new_streams() {
        let mut core = server();
        let local = EffectiveSettings {
            max_concurrent_streams: Some(1),
            ..Default::default()
        };
        core.set_local_settings(local);
        let mut client = ConnectionCore::new(
            Role::Client,
            EffectiveSettings::default(),
            EncoderOptions::default(),
        );
        for frame in client.encode_headers(sid(1), &client_headers(), false, None) {
            feed(&mut core, frame);
        }
        let mut events = Vec::new();
        for frame in client.encode_headers(sid(3), &client_headers(), false, None) {
            events.extend(feed(&mut core, frame));
        }
        assert!(events.contains(&CoreEvent::ConcurrencyExceeded { stream: sid(3) }));
    }

    #[test]
    fn send_data_respects_windows() {
        let mut core = server();
        let mut client = ConnectionCore::new(
            Role::Client,
            EffectiveSettings::default(),
            EncoderOptions::default(),
        );
        for frame in client.encode_headers(sid(1), &client_headers(), true, None) {
            feed(&mut core, frame);
        }
        core.encode_headers(sid(1), &[Header::new(":status", "200")], false, None);
        // Peer announced a 1-octet initial window (the paper's §III-B1
        // small-window probe).
        let settings = Settings::new().with(SettingId::InitialWindowSize, 1);
        feed(&mut core, Frame::Settings(SettingsFrame::from(settings)));
        assert_eq!(core.sendable_on(sid(1)), 1);
        let frame = core.send_data(sid(1), Bytes::from_static(b"x"), false);
        assert!(matches!(frame, Frame::Data(ref d) if d.data.len() == 1));
        assert_eq!(core.sendable_on(sid(1)), 0);
    }

    #[test]
    fn push_promise_reserves_even_stream() {
        let mut core = server();
        let (promised, frame) =
            core.encode_push_promise(sid(1), &[Header::new(":path", "/style.css")]);
        assert_eq!(promised, sid(2));
        assert!(matches!(frame, Frame::PushPromise(_)));
        assert_eq!(
            core.streams().get(sid(2)).unwrap().state,
            StreamState::ReservedLocal
        );
        let (next, _) = core.encode_push_promise(sid(1), &[Header::new(":path", "/app.js")]);
        assert_eq!(next, sid(4));
    }

    #[test]
    fn client_receives_push_promise() {
        let mut server_core = server();
        let mut client = ConnectionCore::new(
            Role::Client,
            EffectiveSettings::default(),
            EncoderOptions::default(),
        );
        let (_, frame) =
            server_core.encode_push_promise(sid(1), &[Header::new(":path", "/style.css")]);
        let events = feed(&mut client, frame);
        match &events[0] {
            CoreEvent::PushPromiseReceived {
                stream,
                promised,
                headers,
            } => {
                assert_eq!(*stream, sid(1));
                assert_eq!(*promised, sid(2));
                assert_eq!(headers[0], Header::new(":path", "/style.css"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            client.streams().get(sid(2)).unwrap().state,
            StreamState::ReservedRemote
        );
    }

    #[test]
    fn self_dependent_priority_frame_is_reported() {
        let mut core = server();
        let events = feed(
            &mut core,
            Frame::Priority(h2wire::PriorityFrame {
                stream_id: sid(5),
                spec: PrioritySpec {
                    exclusive: false,
                    dependency: sid(5),
                    weight: 16,
                },
            }),
        );
        assert_eq!(events, vec![CoreEvent::SelfDependency { stream: sid(5) }]);
    }

    #[test]
    fn goaway_sets_flag() {
        let mut core = server();
        let events = feed(
            &mut core,
            Frame::Goaway(h2wire::GoawayFrame {
                last_stream_id: sid(0),
                code: ErrorCode::NoError,
                debug_data: Bytes::new(),
            }),
        );
        assert!(matches!(events[0], CoreEvent::GoawayReceived { .. }));
        assert!(core.goaway_received());
    }

    #[test]
    fn replenish_emits_window_updates() {
        let mut core = server();
        let mut client = ConnectionCore::new(
            Role::Client,
            EffectiveSettings::default(),
            EncoderOptions::default(),
        );
        for frame in client.encode_headers(sid(1), &client_headers(), false, None) {
            feed(&mut core, frame);
        }
        let data = Frame::Data(DataFrame {
            stream_id: sid(1),
            data: Bytes::from(vec![0u8; 100]),
            end_stream: false,
            pad_len: None,
        });
        feed(&mut core, data);
        let updates = core.replenish_recv_windows(sid(1), 100);
        assert_eq!(updates.len(), 2);
        assert_eq!(core.connection_recv_window(), 65_535);
    }

    #[test]
    fn hpack_evictions_reach_the_observability_handle() {
        // Squeeze the encoder's dynamic table so distinct response headers
        // evict each other, and check the delta reporting in
        // `encode_headers` forwards every eviction to the obs handle.
        let obs = h2obs::Obs::campaign(0);
        let mut core = server();
        core.set_obs(obs.for_site(0));
        let mut client = ConnectionCore::new(
            Role::Client,
            EffectiveSettings::default(),
            EncoderOptions::default(),
        );
        for frame in client.encode_headers(sid(1), &client_headers(), true, None) {
            feed(&mut core, frame);
        }
        core.encoder.resize_table(128);
        for i in 0..8 {
            let headers = vec![
                Header::new(":status", "200"),
                Header::new("x-filler", format!("{i}-{}", "v".repeat(40))),
            ];
            let _ = core.encode_headers(sid(1), &headers, true, None);
        }
        assert!(core.encoder.table().evictions() > 0, "table never evicted");
        let snap = obs.snapshot().expect("campaign obs snapshots");
        assert_eq!(
            snap.hpack_evictions,
            core.encoder.table().evictions() + core.decoder.table().evictions()
        );
    }
}
