//! Per-stream state (RFC 7540 §5.1) and the stream table.

use std::collections::HashMap;

use h2wire::{ErrorCode, StreamId};

use crate::window::FlowWindow;

/// The RFC 7540 §5.1 stream lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamState {
    /// Not yet used.
    Idle,
    /// Promised by us via PUSH_PROMISE.
    ReservedLocal,
    /// Promised by the peer via PUSH_PROMISE.
    ReservedRemote,
    /// Both directions open.
    Open,
    /// We sent END_STREAM; the peer may still send.
    HalfClosedLocal,
    /// The peer sent END_STREAM; we may still send.
    HalfClosedRemote,
    /// Fully closed.
    Closed,
}

impl StreamState {
    /// `true` when the local endpoint may still send DATA/HEADERS.
    pub fn can_send(self) -> bool {
        matches!(
            self,
            StreamState::Open | StreamState::HalfClosedRemote | StreamState::ReservedLocal
        )
    }

    /// `true` when frames from the peer are still expected.
    pub fn can_recv(self) -> bool {
        matches!(
            self,
            StreamState::Open | StreamState::HalfClosedLocal | StreamState::ReservedRemote
        )
    }
}

/// Why a stream reached [`StreamState::Closed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// Both sides finished normally.
    EndStream,
    /// We sent RST_STREAM.
    ResetLocal(ErrorCode),
    /// The peer sent RST_STREAM.
    ResetRemote(ErrorCode),
}

/// One stream's bookkeeping: state plus both flow-control windows.
#[derive(Debug, Clone)]
pub struct Stream {
    /// Stream identifier.
    pub id: StreamId,
    /// Lifecycle state.
    pub state: StreamState,
    /// Window limiting what *we* may send on this stream.
    pub send_window: FlowWindow,
    /// Window limiting what the peer may send to us.
    pub recv_window: FlowWindow,
    /// Set once the stream closes.
    pub close_reason: Option<CloseReason>,
}

impl Stream {
    /// Creates an idle stream with the given initial window sizes.
    pub fn new(id: StreamId, send_initial: u32, recv_initial: u32) -> Stream {
        Stream {
            id,
            state: StreamState::Idle,
            send_window: FlowWindow::new(send_initial),
            recv_window: FlowWindow::new(recv_initial),
            close_reason: None,
        }
    }

    /// Transition for sending HEADERS opening the stream.
    pub fn send_headers(&mut self, end_stream: bool) {
        self.state = match (self.state, end_stream) {
            (StreamState::Idle, false) => StreamState::Open,
            (StreamState::Idle, true) => StreamState::HalfClosedLocal,
            (StreamState::ReservedLocal, false) => StreamState::HalfClosedRemote,
            (StreamState::ReservedLocal, true) => StreamState::Closed,
            (state, false) => state,
            (StreamState::Open, true) => StreamState::HalfClosedLocal,
            (StreamState::HalfClosedRemote, true) => StreamState::Closed,
            (state, true) => state,
        };
        if self.state == StreamState::Closed && self.close_reason.is_none() {
            self.close_reason = Some(CloseReason::EndStream);
        }
    }

    /// Transition for receiving HEADERS.
    pub fn recv_headers(&mut self, end_stream: bool) {
        self.state = match (self.state, end_stream) {
            (StreamState::Idle, false) => StreamState::Open,
            (StreamState::Idle, true) => StreamState::HalfClosedRemote,
            (StreamState::ReservedRemote, false) => StreamState::HalfClosedLocal,
            (StreamState::ReservedRemote, true) => StreamState::Closed,
            (state, false) => state,
            (StreamState::Open, true) => StreamState::HalfClosedRemote,
            (StreamState::HalfClosedLocal, true) => StreamState::Closed,
            (state, true) => state,
        };
        if self.state == StreamState::Closed && self.close_reason.is_none() {
            self.close_reason = Some(CloseReason::EndStream);
        }
    }

    /// Transition for a locally sent END_STREAM on DATA.
    pub fn send_end_stream(&mut self) {
        self.state = match self.state {
            StreamState::Open => StreamState::HalfClosedLocal,
            StreamState::HalfClosedRemote => StreamState::Closed,
            other => other,
        };
        if self.state == StreamState::Closed && self.close_reason.is_none() {
            self.close_reason = Some(CloseReason::EndStream);
        }
    }

    /// Transition for a received END_STREAM on DATA.
    pub fn recv_end_stream(&mut self) {
        self.state = match self.state {
            StreamState::Open => StreamState::HalfClosedRemote,
            StreamState::HalfClosedLocal => StreamState::Closed,
            other => other,
        };
        if self.state == StreamState::Closed && self.close_reason.is_none() {
            self.close_reason = Some(CloseReason::EndStream);
        }
    }

    /// Transition for sending RST_STREAM.
    pub fn send_reset(&mut self, code: ErrorCode) {
        self.state = StreamState::Closed;
        self.close_reason = Some(CloseReason::ResetLocal(code));
    }

    /// Transition for receiving RST_STREAM.
    pub fn recv_reset(&mut self, code: ErrorCode) {
        self.state = StreamState::Closed;
        self.close_reason = Some(CloseReason::ResetRemote(code));
    }

    /// `true` once the stream is closed.
    pub fn is_closed(&self) -> bool {
        self.state == StreamState::Closed
    }
}

/// The set of streams on one connection.
#[derive(Debug, Clone, Default)]
pub struct StreamMap {
    streams: HashMap<u32, Stream>,
    highest_client: u32,
    highest_server: u32,
}

impl StreamMap {
    /// Creates an empty map.
    pub fn new() -> StreamMap {
        StreamMap::default()
    }

    /// Gets a stream.
    pub fn get(&self, id: StreamId) -> Option<&Stream> {
        self.streams.get(&id.value())
    }

    /// Gets a stream mutably.
    pub fn get_mut(&mut self, id: StreamId) -> Option<&mut Stream> {
        self.streams.get_mut(&id.value())
    }

    /// Inserts a stream, tracking the highest id seen per initiator.
    pub fn insert(&mut self, stream: Stream) -> &mut Stream {
        let id = stream.id;
        if id.is_client_initiated() {
            self.highest_client = self.highest_client.max(id.value());
        } else if id.is_server_initiated() {
            self.highest_server = self.highest_server.max(id.value());
        }
        self.streams.entry(id.value()).or_insert(stream)
    }

    /// Gets or creates a stream with the given initial windows.
    pub fn get_or_create(
        &mut self,
        id: StreamId,
        send_initial: u32,
        recv_initial: u32,
    ) -> &mut Stream {
        if id.is_client_initiated() {
            self.highest_client = self.highest_client.max(id.value());
        } else if id.is_server_initiated() {
            self.highest_server = self.highest_server.max(id.value());
        }
        self.streams
            .entry(id.value())
            .or_insert_with(|| Stream::new(id, send_initial, recv_initial))
    }

    /// Highest client-initiated stream id seen.
    pub fn highest_client_id(&self) -> StreamId {
        StreamId::new(self.highest_client)
    }

    /// Highest server-initiated stream id seen.
    pub fn highest_server_id(&self) -> StreamId {
        StreamId::new(self.highest_server)
    }

    /// Number of streams currently tracked.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// `true` when no streams exist.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Number of streams counted against `SETTINGS_MAX_CONCURRENT_STREAMS`
    /// (open or half-closed; RFC 7540 §5.1.2).
    pub fn active_count(&self) -> usize {
        self.streams
            .values()
            .filter(|s| {
                matches!(
                    s.state,
                    StreamState::Open
                        | StreamState::HalfClosedLocal
                        | StreamState::HalfClosedRemote
                )
            })
            .count()
    }

    /// Iterates all streams in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Stream> {
        self.streams.values()
    }

    /// Iterates all streams mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Stream> {
        self.streams.values_mut()
    }

    /// Drops a stream entirely (after both sides have seen it close).
    pub fn remove(&mut self, id: StreamId) -> Option<Stream> {
        self.streams.remove(&id.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(v: u32) -> StreamId {
        StreamId::new(v)
    }

    #[test]
    fn request_response_lifecycle() {
        // Client side of a GET: HEADERS(ES) out, HEADERS+DATA(ES) in.
        let mut s = Stream::new(sid(1), 65_535, 65_535);
        assert_eq!(s.state, StreamState::Idle);
        s.send_headers(true);
        assert_eq!(s.state, StreamState::HalfClosedLocal);
        assert!(!s.state.can_send());
        assert!(s.state.can_recv());
        s.recv_headers(false);
        assert_eq!(s.state, StreamState::HalfClosedLocal);
        s.recv_end_stream();
        assert_eq!(s.state, StreamState::Closed);
        assert_eq!(s.close_reason, Some(CloseReason::EndStream));
    }

    #[test]
    fn server_side_lifecycle() {
        let mut s = Stream::new(sid(1), 65_535, 65_535);
        s.recv_headers(true); // complete request
        assert_eq!(s.state, StreamState::HalfClosedRemote);
        assert!(s.state.can_send());
        s.send_headers(false); // response headers
        s.send_end_stream(); // final DATA
        assert_eq!(s.state, StreamState::Closed);
    }

    #[test]
    fn push_promise_lifecycle() {
        // Server reserves, then fulfills.
        let mut s = Stream::new(sid(2), 65_535, 65_535);
        s.state = StreamState::ReservedLocal;
        assert!(s.state.can_send());
        assert!(!s.state.can_recv());
        s.send_headers(false);
        assert_eq!(s.state, StreamState::HalfClosedRemote);
        s.send_end_stream();
        assert_eq!(s.state, StreamState::Closed);
    }

    #[test]
    fn reset_closes_immediately() {
        let mut s = Stream::new(sid(1), 65_535, 65_535);
        s.recv_headers(false);
        s.recv_reset(ErrorCode::RefusedStream);
        assert!(s.is_closed());
        assert_eq!(
            s.close_reason,
            Some(CloseReason::ResetRemote(ErrorCode::RefusedStream))
        );
    }

    #[test]
    fn map_tracks_highest_ids_and_active_count() {
        let mut map = StreamMap::new();
        map.get_or_create(sid(5), 100, 100).recv_headers(false);
        map.get_or_create(sid(3), 100, 100).recv_headers(true);
        map.get_or_create(sid(2), 100, 100);
        assert_eq!(map.highest_client_id(), sid(5));
        assert_eq!(map.highest_server_id(), sid(2));
        assert_eq!(map.len(), 3);
        assert_eq!(map.active_count(), 2, "idle pushed stream not counted");
    }

    #[test]
    fn get_or_create_is_idempotent() {
        let mut map = StreamMap::new();
        map.get_or_create(sid(1), 10, 10).send_headers(false);
        let again = map.get_or_create(sid(1), 10, 10);
        assert_eq!(again.state, StreamState::Open, "existing stream returned");
    }
}
