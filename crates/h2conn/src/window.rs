//! Flow-control window arithmetic (RFC 7540 §5.2, §6.9).

use std::error::Error;
use std::fmt;

/// Largest legal flow-control window: 2^31 - 1 octets.
pub const MAX_WINDOW: i64 = (1 << 31) - 1;

/// Default initial window for streams and connections.
pub const DEFAULT_WINDOW: u32 = 65_535;

/// Error raised when a window operation violates RFC 7540.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowError {
    /// An update would push the window past 2^31 - 1 (§6.9.1: the sender
    /// "MUST terminate either the stream or the connection").
    Overflow,
    /// An attempt to consume more window than is available.
    Insufficient {
        /// Octets requested.
        requested: u32,
        /// Octets available (may be negative after a SETTINGS shrink).
        available: i64,
    },
}

impl fmt::Display for WindowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowError::Overflow => f.write_str("flow-control window exceeds 2^31-1"),
            WindowError::Insufficient {
                requested,
                available,
            } => {
                write!(
                    f,
                    "requested {requested} octets but window holds {available}"
                )
            }
        }
    }
}

impl Error for WindowError {}

/// One flow-control window (send or receive side, stream or connection
/// scope).
///
/// Stored as `i64` because RFC 7540 §6.9.2 lets a `SETTINGS_INITIAL_WINDOW_SIZE`
/// reduction drive a window negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowWindow {
    available: i64,
}

impl Default for FlowWindow {
    fn default() -> FlowWindow {
        FlowWindow::new(DEFAULT_WINDOW)
    }
}

impl FlowWindow {
    /// Creates a window holding `initial` octets.
    pub fn new(initial: u32) -> FlowWindow {
        FlowWindow {
            available: i64::from(initial),
        }
    }

    /// Octets currently available (negative when over-committed).
    pub fn available(&self) -> i64 {
        self.available
    }

    /// `true` when at least one octet may be sent.
    pub fn is_open(&self) -> bool {
        self.available > 0
    }

    /// Grows the window by a WINDOW_UPDATE increment.
    ///
    /// # Errors
    ///
    /// [`WindowError::Overflow`] when the result would exceed 2^31 - 1.
    /// Note that a zero increment is *not* checked here: RFC 7540 §6.9
    /// makes it a PROTOCOL_ERROR that callers classify explicitly, because
    /// the paper probes exactly how servers react to it.
    pub fn expand(&mut self, increment: u32) -> Result<(), WindowError> {
        let next = self
            .available
            .checked_add(i64::from(increment))
            .ok_or(WindowError::Overflow)?;
        if next > MAX_WINDOW {
            return Err(WindowError::Overflow);
        }
        self.available = next;
        Ok(())
    }

    /// Consumes `octets` from the window (sending or receiving data).
    ///
    /// # Errors
    ///
    /// [`WindowError::Insufficient`] when the window holds fewer octets.
    pub fn consume(&mut self, octets: u32) -> Result<(), WindowError> {
        if i64::from(octets) > self.available {
            return Err(WindowError::Insufficient {
                requested: octets,
                available: self.available,
            });
        }
        self.available -= i64::from(octets);
        Ok(())
    }

    /// Applies a `SETTINGS_INITIAL_WINDOW_SIZE` delta (may go negative).
    ///
    /// # Errors
    ///
    /// [`WindowError::Overflow`] when the adjustment would exceed the
    /// maximum window (§6.9.2 makes that a FLOW_CONTROL_ERROR) or when the
    /// arithmetic itself would wrap `i64` — repeated adversarial
    /// `SETTINGS_INITIAL_WINDOW_SIZE` swings must not become wrap-around
    /// in release builds.
    pub fn adjust(&mut self, delta: i64) -> Result<(), WindowError> {
        let next = self
            .available
            .checked_add(delta)
            .ok_or(WindowError::Overflow)?;
        if next > MAX_WINDOW {
            return Err(WindowError::Overflow);
        }
        self.available = next;
        Ok(())
    }

    /// The largest chunk that fits in both this window and `cap`.
    pub fn sendable(&self, cap: u32) -> u32 {
        if self.available <= 0 {
            0
        } else {
            self.available.min(i64::from(cap)) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_window_is_65535() {
        assert_eq!(FlowWindow::default().available(), 65_535);
    }

    #[test]
    fn consume_and_expand_round_trip() {
        let mut w = FlowWindow::new(100);
        w.consume(60).unwrap();
        assert_eq!(w.available(), 40);
        w.expand(10).unwrap();
        assert_eq!(w.available(), 50);
    }

    #[test]
    fn consume_past_zero_is_rejected() {
        let mut w = FlowWindow::new(10);
        assert_eq!(
            w.consume(11),
            Err(WindowError::Insufficient {
                requested: 11,
                available: 10
            })
        );
    }

    #[test]
    fn overflow_is_detected_exactly_at_the_boundary() {
        let mut w = FlowWindow::new(DEFAULT_WINDOW);
        // The paper's "large window update" probe: two increments whose sum
        // exceeds 2^31-1 must fail on the second.
        w.expand(0x7fff_ffff - DEFAULT_WINDOW).unwrap();
        assert_eq!(w.available(), MAX_WINDOW);
        assert_eq!(w.expand(1), Err(WindowError::Overflow));
    }

    #[test]
    fn settings_shrink_can_go_negative() {
        let mut w = FlowWindow::new(100);
        w.adjust(-150).unwrap();
        assert_eq!(w.available(), -50);
        assert!(!w.is_open());
        assert_eq!(w.sendable(100), 0);
        w.expand(60).unwrap();
        assert_eq!(w.available(), 10);
        assert_eq!(w.sendable(100), 10);
    }

    #[test]
    fn sendable_respects_cap() {
        let w = FlowWindow::new(1_000_000);
        assert_eq!(w.sendable(16_384), 16_384);
        let w = FlowWindow::new(5);
        assert_eq!(w.sendable(16_384), 5);
    }

    #[test]
    fn adjust_never_wraps_i64() {
        // Regression: `adjust` used unchecked `+`, so driving the window
        // deeply negative and then applying i64::MIN wrapped in release
        // builds (and panicked in debug). It must report Overflow instead.
        let mut w = FlowWindow::new(0);
        w.adjust(i64::MIN + 1).unwrap();
        assert_eq!(w.available(), i64::MIN + 1);
        assert_eq!(w.adjust(-2), Err(WindowError::Overflow));
        // The window is untouched after a failed adjustment.
        assert_eq!(w.available(), i64::MIN + 1);

        let mut w = FlowWindow::new(DEFAULT_WINDOW);
        assert_eq!(w.adjust(i64::MAX), Err(WindowError::Overflow));
        assert_eq!(w.available(), i64::from(DEFAULT_WINDOW));
    }

    #[test]
    fn expand_at_the_cap_still_reports_overflow() {
        let mut w = FlowWindow::new(DEFAULT_WINDOW);
        w.adjust(MAX_WINDOW - i64::from(DEFAULT_WINDOW)).unwrap();
        assert_eq!(w.available(), MAX_WINDOW);
        assert_eq!(w.expand(1), Err(WindowError::Overflow));
    }

    #[test]
    fn zero_increment_is_mechanically_allowed() {
        // Classification of zero updates is a policy decision made by the
        // endpoint (probed by §III-B3); the arithmetic layer accepts it.
        let mut w = FlowWindow::new(10);
        assert!(w.expand(0).is_ok());
        assert_eq!(w.available(), 10);
    }
}
