//! The stream priority dependency tree (RFC 7540 §5.3) and the weighted
//! scheduler servers use to pick which stream sends DATA next.
//!
//! This module implements everything the paper's Algorithm 1 exercises:
//! dependency insertion (exclusive and non-exclusive), reprioritization
//! with the §5.3.3 descendant-move rule, self-dependency detection, and a
//! parent-before-children weighted-round-robin scheduler.
//!
//! Unknown stream ids arriving in PRIORITY frames are attached to the
//! tree before use, so every map lookup below operates on a key the
//! tree itself inserted.
// h2check: allow-file(panic, index) — tree-membership invariant: attach()/reprioritize() insert every id before it is dereferenced

use std::collections::HashMap;

use h2wire::{PrioritySpec, StreamId};

/// Error returned when a PRIORITY operation names the stream itself as its
/// parent (RFC 7540 §5.3.1: "a stream cannot depend on itself").
///
/// How to *react* (RST_STREAM, GOAWAY, or silently ignore) is a server
/// policy the paper measures; the tree only reports the condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelfDependencyError {
    /// The self-dependent stream.
    pub stream: StreamId,
}

impl std::fmt::Display for SelfDependencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream {} depends on itself", self.stream)
    }
}

impl std::error::Error for SelfDependencyError {}

#[derive(Debug, Clone)]
struct Node {
    parent: u32,
    weight: u16,
    children: Vec<u32>,
    /// Smooth weighted-round-robin credit used by the scheduler.
    wrr_credit: i64,
}

impl Node {
    fn new(parent: u32, weight: u16) -> Node {
        Node {
            parent,
            weight,
            children: Vec::new(),
            wrr_credit: 0,
        }
    }
}

/// The dependency tree. Stream 0 is the implicit root.
#[derive(Debug, Clone)]
pub struct PriorityTree {
    nodes: HashMap<u32, Node>,
}

impl Default for PriorityTree {
    fn default() -> PriorityTree {
        PriorityTree::new()
    }
}

impl PriorityTree {
    /// Creates a tree containing only the root (stream 0).
    pub fn new() -> PriorityTree {
        let mut nodes = HashMap::new();
        nodes.insert(0, Node::new(0, 0));
        PriorityTree { nodes }
    }

    /// Number of streams in the tree, excluding the root.
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// `true` when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// `true` when `stream` is present (the root always is).
    pub fn contains(&self, stream: StreamId) -> bool {
        self.nodes.contains_key(&stream.value())
    }

    /// The parent of `stream`, or `None` if the stream is unknown.
    pub fn parent_of(&self, stream: StreamId) -> Option<StreamId> {
        self.nodes
            .get(&stream.value())
            .map(|n| StreamId::new(n.parent))
    }

    /// The weight of `stream` (1..=256), or `None` if unknown.
    pub fn weight_of(&self, stream: StreamId) -> Option<u16> {
        self.nodes.get(&stream.value()).map(|n| n.weight)
    }

    /// The children of `stream` in insertion order.
    pub fn children_of(&self, stream: StreamId) -> Vec<StreamId> {
        self.nodes
            .get(&stream.value())
            .map(|n| n.children.iter().map(|&c| StreamId::new(c)).collect())
            .unwrap_or_default()
    }

    /// `true` when `descendant` sits below `ancestor`.
    pub fn is_descendant(&self, descendant: StreamId, ancestor: StreamId) -> bool {
        let target = ancestor.value();
        let mut cursor = descendant.value();
        while let Some(node) = self.nodes.get(&cursor) {
            if cursor == 0 {
                return false;
            }
            if node.parent == target {
                return true;
            }
            cursor = node.parent;
        }
        false
    }

    /// Declares or re-declares the priority of `stream` per `spec`,
    /// creating the stream (and, per RFC 7540 §5.3.1, an absent parent at
    /// default priority) as needed. Handles both initial prioritization
    /// from HEADERS and reprioritization from PRIORITY frames, including
    /// the §5.3.3 rule: when the new parent is currently a descendant of
    /// `stream`, the parent is first moved to depend on `stream`'s old
    /// parent, retaining its weight.
    ///
    /// # Errors
    ///
    /// [`SelfDependencyError`] when `spec.dependency == stream`; the tree
    /// is left unchanged so callers can apply their chosen quirk.
    pub fn declare(
        &mut self,
        stream: StreamId,
        spec: PrioritySpec,
    ) -> Result<(), SelfDependencyError> {
        if spec.dependency == stream {
            return Err(SelfDependencyError { stream });
        }
        let id = stream.value();
        let new_parent = spec.dependency.value();

        // Materialize the parent at default priority if it is unknown.
        if !self.nodes.contains_key(&new_parent) {
            self.attach(new_parent, 0, PrioritySpec::default_spec().weight);
        }
        if !self.nodes.contains_key(&id) {
            self.attach(id, 0, PrioritySpec::default_spec().weight);
        }

        // §5.3.3: if the new parent is a descendant of `stream`, move it up
        // to `stream`'s current parent first, retaining its weight.
        if self.is_descendant(spec.dependency, stream) {
            let old_parent = self.nodes[&id].parent;
            self.move_subtree(new_parent, old_parent);
        }

        self.move_subtree(id, new_parent);
        if spec.exclusive {
            // Adopt every other child of the new parent.
            let siblings: Vec<u32> = self.nodes[&new_parent]
                .children
                .iter()
                .copied()
                .filter(|&c| c != id)
                .collect();
            for sibling in siblings {
                self.move_subtree(sibling, id);
            }
        }
        self.nodes.get_mut(&id).expect("stream exists").weight = spec.weight;
        Ok(())
    }

    /// Removes a closed stream. Its children are reparented to its parent
    /// with weights scaled proportionally to the closed stream's weight
    /// (RFC 7540 §5.3.4).
    pub fn remove(&mut self, stream: StreamId) {
        let id = stream.value();
        if id == 0 {
            return;
        }
        let Some(node) = self.nodes.remove(&id) else {
            return;
        };
        if let Some(parent) = self.nodes.get_mut(&node.parent) {
            parent.children.retain(|&c| c != id);
        }
        let total: u32 = node
            .children
            .iter()
            .map(|c| u32::from(self.nodes[c].weight))
            .sum();
        for child in node.children {
            let child_node = self.nodes.get_mut(&child).expect("child exists");
            child_node.parent = node.parent;
            if let Some(scaled) =
                (u32::from(node.weight) * u32::from(child_node.weight)).checked_div(total)
            {
                child_node.weight = scaled.clamp(1, 256) as u16;
            }
            self.nodes
                .get_mut(&node.parent)
                .expect("parent exists")
                .children
                .push(child);
        }
    }

    /// Picks the next stream allowed to transmit, among streams for which
    /// `is_ready` returns `true` (has queued data and window).
    ///
    /// The discipline matches what the paper's Algorithm 1 verifies on
    /// priority-aware servers: a ready stream is always served before any
    /// of its descendants, and sibling subtrees share service in
    /// proportion to their weights (smooth weighted round-robin).
    pub fn next_stream(&mut self, is_ready: impl Fn(StreamId) -> bool) -> Option<StreamId> {
        self.pick(0, &is_ready)
    }

    fn pick(&mut self, node: u32, is_ready: &impl Fn(StreamId) -> bool) -> Option<StreamId> {
        if node != 0 && is_ready(StreamId::new(node)) {
            return Some(StreamId::new(node));
        }
        let children = self.nodes.get(&node)?.children.clone();
        let eligible: Vec<u32> = children
            .into_iter()
            .filter(|&c| self.subtree_has_ready(c, is_ready))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        // Smooth WRR: credit += weight; winner = max credit; winner's
        // credit -= total weight. Ties break toward the lower stream id so
        // the schedule is deterministic.
        let total: i64 = eligible
            .iter()
            .map(|c| i64::from(self.nodes[c].weight))
            .sum();
        let mut winner = eligible[0];
        let mut best = i64::MIN;
        for &c in &eligible {
            let n = self.nodes.get_mut(&c).expect("eligible child exists");
            n.wrr_credit += i64::from(n.weight);
            let credit = n.wrr_credit;
            if credit > best || (credit == best && c < winner) {
                best = credit;
                winner = c;
            }
        }
        self.nodes
            .get_mut(&winner)
            .expect("winner exists")
            .wrr_credit -= total;
        self.pick(winner, is_ready)
    }

    fn subtree_has_ready(&self, node: u32, is_ready: &impl Fn(StreamId) -> bool) -> bool {
        if is_ready(StreamId::new(node)) {
            return true;
        }
        self.nodes.get(&node).is_some_and(|n| {
            n.children
                .iter()
                .any(|&c| self.subtree_has_ready(c, is_ready))
        })
    }

    /// All stream ids currently in the tree (excluding the root), in
    /// unspecified order.
    pub fn ids(&self) -> Vec<StreamId> {
        self.nodes
            .keys()
            .filter(|&&id| id != 0)
            .map(|&id| StreamId::new(id))
            .collect()
    }

    /// Removes every stream for which `is_active` returns `false`,
    /// reparenting children per [`PriorityTree::remove`].
    ///
    /// RFC 7540 §5.3.4 notes that retaining closed-stream prioritization
    /// state uses memory and lets it be discarded; this is the mitigation
    /// for the priority-churn attack surface the paper's discussion
    /// raises ("force the server to frequently reconstruct the dependency
    /// tree").
    pub fn prune(&mut self, is_active: impl Fn(StreamId) -> bool) -> usize {
        let stale: Vec<StreamId> = self
            .ids()
            .into_iter()
            .filter(|&id| !is_active(id))
            .collect();
        let count = stale.len();
        for id in stale {
            self.remove(id);
        }
        count
    }

    fn attach(&mut self, id: u32, parent: u32, weight: u16) {
        self.nodes.insert(id, Node::new(parent, weight));
        self.nodes
            .get_mut(&parent)
            .expect("parent exists")
            .children
            .push(id);
    }

    fn move_subtree(&mut self, id: u32, new_parent: u32) {
        let old_parent = self.nodes[&id].parent;
        if old_parent == new_parent && self.nodes[&new_parent].children.contains(&id) {
            return;
        }
        if let Some(op) = self.nodes.get_mut(&old_parent) {
            op.children.retain(|&c| c != id);
        }
        self.nodes.get_mut(&id).expect("stream exists").parent = new_parent;
        self.nodes
            .get_mut(&new_parent)
            .expect("new parent exists")
            .children
            .push(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(v: u32) -> StreamId {
        StreamId::new(v)
    }

    fn spec(dep: u32, weight: u16, exclusive: bool) -> PrioritySpec {
        PrioritySpec {
            exclusive,
            dependency: sid(dep),
            weight,
        }
    }

    /// Builds the paper's Figure 1(1) tree: A(1)-{B(3),C(5),D(7)};
    /// E(9) under B, F(11) under D. Stream letters map to odd ids.
    fn paper_tree() -> PriorityTree {
        let mut t = PriorityTree::new();
        t.declare(sid(1), spec(0, 1, false)).unwrap(); // A
        t.declare(sid(3), spec(1, 1, false)).unwrap(); // B
        t.declare(sid(5), spec(1, 1, false)).unwrap(); // C
        t.declare(sid(7), spec(1, 1, false)).unwrap(); // D
        t.declare(sid(9), spec(3, 1, false)).unwrap(); // E under B
        t.declare(sid(11), spec(7, 1, false)).unwrap(); // F under D
        t
    }

    #[test]
    fn figure1_initial_tree_shape() {
        let t = paper_tree();
        assert_eq!(t.parent_of(sid(1)), Some(sid(0)));
        assert_eq!(t.children_of(sid(1)), vec![sid(3), sid(5), sid(7)]);
        assert_eq!(t.children_of(sid(3)), vec![sid(9)]);
        assert_eq!(t.children_of(sid(7)), vec![sid(11)]);
        assert_eq!(t.len(), 6);
    }

    /// Figure 1(2): PRIORITY making A depend on B *exclusively* — B moves
    /// under A's old parent, A becomes B's sole child, and B's previous
    /// children (E) become children of A.
    #[test]
    fn figure1_exclusive_reprioritization() {
        let mut t = paper_tree();
        t.declare(sid(1), spec(3, 1, true)).unwrap(); // A -> B, exclusive
        assert_eq!(t.parent_of(sid(3)), Some(sid(0)), "B moved up to root");
        assert_eq!(t.children_of(sid(3)), vec![sid(1)], "A is B's only child");
        let mut a_children = t.children_of(sid(1));
        a_children.sort_by_key(|s| s.value());
        assert_eq!(
            a_children,
            vec![sid(5), sid(7), sid(9)],
            "C, D and E under A"
        );
        assert_eq!(t.children_of(sid(7)), vec![sid(11)], "F stays under D");
    }

    /// Figure 1(3): the same PRIORITY without the exclusive flag — E stays
    /// with B, and A keeps C and D.
    #[test]
    fn figure1_non_exclusive_reprioritization() {
        let mut t = paper_tree();
        t.declare(sid(1), spec(3, 1, false)).unwrap(); // A -> B
        assert_eq!(t.parent_of(sid(3)), Some(sid(0)));
        let mut b_children = t.children_of(sid(3));
        b_children.sort_by_key(|s| s.value());
        assert_eq!(b_children, vec![sid(1), sid(9)], "A and E under B");
        let mut a_children = t.children_of(sid(1));
        a_children.sort_by_key(|s| s.value());
        assert_eq!(a_children, vec![sid(5), sid(7)], "C and D remain under A");
    }

    #[test]
    fn self_dependency_is_reported_and_tree_unchanged() {
        let mut t = paper_tree();
        let before = t.children_of(sid(1));
        let err = t.declare(sid(1), spec(1, 7, false)).unwrap_err();
        assert_eq!(err, SelfDependencyError { stream: sid(1) });
        assert_eq!(t.children_of(sid(1)), before);
        assert_eq!(t.weight_of(sid(1)), Some(1), "weight untouched");
    }

    #[test]
    fn dependency_on_unknown_parent_materializes_it_at_default_priority() {
        let mut t = PriorityTree::new();
        t.declare(sid(3), spec(99, 8, false)).unwrap();
        assert_eq!(t.parent_of(sid(99)), Some(sid(0)));
        assert_eq!(t.weight_of(sid(99)), Some(16), "default weight");
        assert_eq!(t.parent_of(sid(3)), Some(sid(99)));
    }

    #[test]
    fn removal_reparents_children_with_scaled_weights() {
        let mut t = PriorityTree::new();
        t.declare(sid(1), spec(0, 8, false)).unwrap();
        t.declare(sid(3), spec(1, 6, false)).unwrap();
        t.declare(sid(5), spec(1, 2, false)).unwrap();
        t.remove(sid(1));
        assert_eq!(t.parent_of(sid(3)), Some(sid(0)));
        assert_eq!(t.parent_of(sid(5)), Some(sid(0)));
        // Weights scale by 8 * w / 8: stream 3 gets 6, stream 5 gets 2.
        assert_eq!(t.weight_of(sid(3)), Some(6));
        assert_eq!(t.weight_of(sid(5)), Some(2));
        assert!(!t.contains(sid(1)));
    }

    #[test]
    fn scheduler_serves_parent_before_children() {
        let mut t = paper_tree();
        let ready: Vec<u32> = vec![1, 3, 5, 7, 9, 11];
        let next = t.next_stream(|s| ready.contains(&s.value())).unwrap();
        assert_eq!(next, sid(1), "A is served before all descendants");
    }

    #[test]
    fn scheduler_descends_through_inactive_nodes() {
        let mut t = paper_tree();
        // A finished; only E (under B) and F (under D) are ready.
        let ready = [9u32, 11];
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.push(
                t.next_stream(|s| ready.contains(&s.value()))
                    .unwrap()
                    .value(),
            );
        }
        assert!(
            seen.contains(&9) && seen.contains(&11),
            "both leaves get service: {seen:?}"
        );
    }

    #[test]
    fn scheduler_shares_by_weight() {
        let mut t = PriorityTree::new();
        t.declare(sid(1), spec(0, 30, false)).unwrap();
        t.declare(sid(3), spec(0, 10, false)).unwrap();
        let mut count1 = 0;
        let mut count3 = 0;
        for _ in 0..400 {
            match t
                .next_stream(|s| matches!(s.value(), 1 | 3))
                .unwrap()
                .value()
            {
                1 => count1 += 1,
                3 => count3 += 1,
                other => panic!("unexpected stream {other}"),
            }
        }
        assert_eq!(count1, 300, "weight-30 stream gets 3/4 of service");
        assert_eq!(count3, 100);
    }

    #[test]
    fn scheduler_returns_none_when_nothing_ready() {
        let mut t = paper_tree();
        assert_eq!(t.next_stream(|_| false), None);
    }

    #[test]
    fn rfc_5_3_3_example_moves_new_parent_up() {
        // RFC 7540 §5.3.3 figure: A with children B and C; C has D; D has
        // E and F. Reprioritize A to depend on D (non-exclusive): D moves
        // under A's old parent (root), A becomes a child of D.
        let mut t = PriorityTree::new();
        t.declare(sid(1), spec(0, 16, false)).unwrap(); // A
        t.declare(sid(3), spec(1, 16, false)).unwrap(); // B
        t.declare(sid(5), spec(1, 16, false)).unwrap(); // C
        t.declare(sid(7), spec(5, 16, false)).unwrap(); // D under C
        t.declare(sid(9), spec(7, 16, false)).unwrap(); // E under D
        t.declare(sid(11), spec(7, 16, false)).unwrap(); // F under D

        t.declare(sid(1), spec(7, 16, false)).unwrap(); // A -> D
        assert_eq!(t.parent_of(sid(7)), Some(sid(0)), "D moved to root");
        assert_eq!(t.parent_of(sid(1)), Some(sid(7)), "A under D");
        let mut a_children = t.children_of(sid(1));
        a_children.sort_by_key(|s| s.value());
        assert_eq!(a_children, vec![sid(3), sid(5)], "B and C stay under A");
        let mut d_children = t.children_of(sid(7));
        d_children.sort_by_key(|s| s.value());
        assert_eq!(
            d_children,
            vec![sid(1), sid(9), sid(11)],
            "A joins E and F under D"
        );
    }

    #[test]
    fn rfc_5_3_3_exclusive_variant() {
        // Same example with the exclusive flag: A becomes D's sole child
        // and adopts E and F.
        let mut t = PriorityTree::new();
        t.declare(sid(1), spec(0, 16, false)).unwrap();
        t.declare(sid(3), spec(1, 16, false)).unwrap();
        t.declare(sid(5), spec(1, 16, false)).unwrap();
        t.declare(sid(7), spec(5, 16, false)).unwrap();
        t.declare(sid(9), spec(7, 16, false)).unwrap();
        t.declare(sid(11), spec(7, 16, false)).unwrap();

        t.declare(sid(1), spec(7, 16, true)).unwrap();
        assert_eq!(t.children_of(sid(7)), vec![sid(1)]);
        let mut a_children = t.children_of(sid(1));
        a_children.sort_by_key(|s| s.value());
        assert_eq!(a_children, vec![sid(3), sid(5), sid(9), sid(11)]);
    }
}
