//! HPACK dynamic-table memory pressure (§VI, fifth concern): "attackers
//! might exploit this feature to launch DoS attacks, such as setting
//! SETTINGS_HEADER_TABLE_SIZE ... to a large value, and then using
//! randomly-generated headers to fill up the table."

use h2scope::{ProbeConn, Target};
use h2server::{ServerProfile, SiteSpec};
use h2wire::{SettingId, Settings};

/// Result of one table-thrash engagement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableThrashReport {
    /// The table ceiling the attacker announced.
    pub announced_table_size: u32,
    /// Octets the victim's response encoder table holds afterwards.
    pub encoder_table_octets: u64,
    /// Requests the attacker issued.
    pub requests: u32,
}

/// Announces a huge `SETTINGS_HEADER_TABLE_SIZE` and issues requests whose
/// responses carry ever-changing `set-cookie` values — each one another
/// incremental-indexing insertion into the victim's encoder table.
pub fn attack(target: &Target, table_size: u32, requests: u32) -> TableThrashReport {
    let settings = Settings::new().with(SettingId::HeaderTableSize, table_size);
    let mut conn = ProbeConn::establish(target, settings, 0x7ab1e);
    conn.exchange();
    for k in 0..requests {
        conn.fetch(1 + 2 * k, "/");
    }
    TableThrashReport {
        announced_table_size: table_size,
        encoder_table_octets: conn.server().encoder_table_octets(),
        requests,
    }
}

/// A victim profile that honors any peer table size (the vulnerable
/// configuration) and varies its response headers per request.
pub fn vulnerable_victim() -> Target {
    let mut profile = ServerProfile::rfc7540();
    profile.behavior.honor_peer_header_table_size = true;
    profile.behavior.cookie_injection = true; // fresh set-cookie per response
    Target::testbed(profile, SiteSpec::benchmark())
}

/// A victim that caps its encoder table at the protocol default
/// regardless of what the peer announces — the mitigation.
pub fn capped_victim() -> Target {
    let mut profile = ServerProfile::rfc7540();
    profile.behavior.honor_peer_header_table_size = false;
    profile.behavior.cookie_injection = true;
    Target::testbed(profile, SiteSpec::benchmark())
}

#[cfg(test)]
mod tests {
    use super::*;

    const HUGE: u32 = 64 * 1024 * 1024; // the attacker asks for 64 MiB

    #[test]
    fn obedient_victim_grows_without_bound() {
        let report = attack(&vulnerable_victim(), HUGE, 200);
        // Each response inserts a fresh ~50-octet cookie entry; nothing is
        // ever evicted because the ceiling is astronomically high.
        assert!(
            report.encoder_table_octets > 10_000,
            "table should balloon: {report:?}"
        );
    }

    #[test]
    fn capped_victim_stays_within_the_default() {
        let report = attack(&capped_victim(), HUGE, 200);
        assert!(
            report.encoder_table_octets <= 4_096,
            "mitigated table must respect the 4 KiB default: {report:?}"
        );
    }

    #[test]
    fn growth_scales_with_request_count_on_vulnerable_victims() {
        let small = attack(&vulnerable_victim(), HUGE, 20);
        let large = attack(&vulnerable_victim(), HUGE, 200);
        assert!(
            large.encoder_table_octets > 5 * small.encoder_table_octets,
            "{small:?} vs {large:?}"
        );
    }

    #[test]
    fn non_indexing_servers_are_immune() {
        // Nginx never inserts response headers into the table at all.
        let mut profile = ServerProfile::nginx();
        profile.behavior.honor_peer_header_table_size = true;
        profile.behavior.cookie_injection = true;
        let target = Target::testbed(profile, SiteSpec::benchmark());
        let report = attack(&target, HUGE, 100);
        assert_eq!(report.encoder_table_octets, 0);
    }
}
