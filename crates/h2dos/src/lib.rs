//! # h2dos — the paper's discussion-section DoS vectors, simulated
//!
//! Section VI of *"Are HTTP/2 Servers Ready Yet?"* warns that several of
//! the protocol features the paper measures are dual-use: the same
//! mechanisms that protect endpoints can be turned against them. This
//! crate turns those warnings into runnable experiments against the
//! workspace's simulated servers, with a mitigation measured next to
//! each attack:
//!
//! | §VI concern | Module | Mitigation measured |
//! |---|---|---|
//! | flow control as a memory pin (malicious receiver) | [`slow_receiver`] | minimum-window policy |
//! | `SETTINGS_HEADER_TABLE_SIZE` abuse | [`table_thrash`] | capping the encoder table |
//! | priority-tree algorithmic complexity | [`priority_churn`] | pruning inactive streams |
//!
//! Everything runs in virtual time on the deterministic simulator: the
//! "attacks" never touch a network and exist to quantify *engine*
//! behavior (octets pinned, table growth, tree size), exactly as a
//! defensive capacity-planning exercise would.
//!
//! ```
//! use h2dos::slow_receiver;
//! use h2scope::Target;
//! use h2server::{ServerProfile, SiteSpec};
//!
//! let victim = Target::testbed(ServerProfile::rfc7540(), SiteSpec::benchmark());
//! let report = slow_receiver::attack(&victim, 4);
//! // Deterministic: same target, same stream count, same report.
//! assert_eq!(report.attacker_octets, 152);
//! assert_eq!(report.pinned_octets, 1_048_572); // kilobytes pinned...
//! assert_eq!(report.amplification, 6_898); // ...per attacker octet
//! ```

#![warn(missing_docs)]

pub mod priority_churn;
pub mod slow_receiver;
pub mod table_thrash;

pub use priority_churn::ChurnReport;
pub use slow_receiver::SlowReceiverReport;
pub use table_thrash::TableThrashReport;
