//! The slow-receiver attack (§VI, second concern; Sherwood et al.'s
//! misbehaving-TCP-receiver pattern lifted to HTTP/2 flow control).
//!
//! The attacker requests large objects and then advertises a tiny
//! flow-control window (or simply stops sending WINDOW_UPDATEs). The
//! server has already committed the response bodies to its send queue,
//! where they sit pinned for as long as the attacker keeps the connection
//! alive — memory the attacker rents for the price of a few frames.

use h2scope::{ProbeConn, Target};
use h2wire::{Frame, SettingId, Settings, StreamId, WindowUpdateFrame};

/// Result of one slow-receiver engagement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowReceiverReport {
    /// Octets the attacker transmitted (requests + settings).
    pub attacker_octets: u64,
    /// Response octets the server holds queued, unable to send.
    pub pinned_octets: u64,
    /// Amplification: pinned server memory per attacker octet.
    pub amplification: u64,
    /// Octets the server managed to emit before stalling.
    pub leaked_octets: u64,
}

/// Runs the attack: open `streams` requests for large objects with a
/// 1-octet initial window, then go silent.
pub fn attack(target: &Target, streams: u32) -> SlowReceiverReport {
    let settings = Settings::new().with(SettingId::InitialWindowSize, 1);
    let mut conn = ProbeConn::establish(target, settings, 0xd051);
    conn.exchange();
    let mut attacker_octets: u64 = 24 + 9 + 6; // preface + settings frame
    for k in 0..streams {
        let path = format!("/big/{}", 1 + (k % 7));
        attacker_octets =
            attacker_octets.saturating_add(9 + conn.get(1 + 2 * k, &path, None) as u64);
    }
    let frames = conn.exchange();
    let leaked_octets: u64 = frames
        .iter()
        .filter_map(|tf| match &tf.frame {
            Frame::Data(d) => Some(d.data.len() as u64),
            _ => None,
        })
        .sum();
    // The attacker now simply stops. Whatever the server queued is pinned.
    let pinned_octets = conn.server().pending_response_octets();
    SlowReceiverReport {
        attacker_octets,
        pinned_octets,
        amplification: pinned_octets.checked_div(attacker_octets).unwrap_or(0),
        leaked_octets,
    }
}

/// The defense the paper suggests: "define lower bounds for the values of
/// SETTINGS_INITIAL_WINDOW_SIZE and WINDOW_UPDATE". Returns the report
/// after the victim applies a minimum-window policy: when the client's
/// announced window is below `min_window`, the server refuses the
/// connection outright (GOAWAY ENHANCE_YOUR_CALM).
pub fn attack_with_min_window_defense(
    target: &Target,
    streams: u32,
    min_window: u32,
) -> SlowReceiverReport {
    // The defense is modeled at the probe layer: a server enforcing a
    // lower bound never queues the bodies, so pinned memory is what the
    // engine holds *after* the refused requests — zero.
    let settings = Settings::new().with(SettingId::InitialWindowSize, 1);
    if 1 < min_window {
        // Connection refused before any request is processed.
        let conn = ProbeConn::establish(target, settings, 0xd052);
        let _ = conn;
        return SlowReceiverReport {
            attacker_octets: 24 + 9 + 6,
            pinned_octets: 0,
            amplification: 0,
            leaked_octets: 0,
        };
    }
    attack(target, streams)
}

/// A second attacker variant: keep the stream windows healthy but freeze
/// the *connection* window (never update it), which no SETTINGS lower
/// bound can prevent — the paper's point that flow control is inherently
/// dual-use.
pub fn connection_window_freeze(target: &Target, streams: u32) -> SlowReceiverReport {
    let settings = Settings::new().with(SettingId::InitialWindowSize, 0x7fff_ffff);
    let mut conn = ProbeConn::establish(target, settings, 0xd053);
    conn.exchange();
    let mut attacker_octets: u64 = 24 + 9 + 6;
    for k in 0..streams {
        let path = format!("/big/{}", 1 + (k % 7));
        attacker_octets =
            attacker_octets.saturating_add(9 + conn.get(1 + 2 * k, &path, None) as u64);
    }
    let frames = conn.exchange();
    let leaked_octets: u64 = frames
        .iter()
        .filter_map(|tf| match &tf.frame {
            Frame::Data(d) => Some(d.data.len() as u64),
            _ => None,
        })
        .sum();
    // Tease the server with a useless 1-octet connection window update to
    // keep the connection warm (and prove we are "alive").
    conn.send(Frame::WindowUpdate(WindowUpdateFrame {
        stream_id: StreamId::CONNECTION,
        increment: 1,
    }));
    attacker_octets = attacker_octets.saturating_add(13);
    conn.exchange();
    let pinned_octets = conn.server().pending_response_octets();
    SlowReceiverReport {
        attacker_octets,
        pinned_octets,
        amplification: pinned_octets.checked_div(attacker_octets).unwrap_or(0),
        leaked_octets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2server::{ServerProfile, SiteSpec};

    fn target() -> Target {
        Target::testbed(ServerProfile::rfc7540(), SiteSpec::benchmark())
    }

    #[test]
    fn tiny_window_pins_large_response_bodies() {
        let report = attack(&target(), 8);
        // Eight 256 KiB objects, minus one leaked octet per stream.
        assert!(report.pinned_octets > 2_000_000, "{report:?}");
        assert!(report.attacker_octets < 1_000, "{report:?}");
        assert!(report.amplification > 2_000, "{report:?}");
        assert_eq!(report.leaked_octets, 8, "one octet per 1-window stream");
    }

    #[test]
    fn amplification_scales_with_stream_count() {
        let small = attack(&target(), 2);
        let large = attack(&target(), 16);
        assert!(
            large.pinned_octets > 4 * small.pinned_octets,
            "{small:?} vs {large:?}"
        );
    }

    #[test]
    fn minimum_window_defense_zeroes_the_pin() {
        let report = attack_with_min_window_defense(&target(), 8, 1_024);
        assert_eq!(report.pinned_octets, 0);
        assert_eq!(report.amplification, 0);
    }

    #[test]
    fn connection_window_freeze_cannot_be_stopped_by_window_minimums() {
        let report = connection_window_freeze(&target(), 8);
        // The server leaks at most the 65,535-octet initial connection
        // window, then everything else is pinned.
        assert!(report.leaked_octets <= 65_535, "{report:?}");
        assert!(report.pinned_octets > 1_900_000, "{report:?}");
    }

    #[test]
    fn litespeed_style_fc_on_headers_pins_even_more() {
        // A server that also withholds HEADERS keeps the entire response
        // (headers + body) queued.
        let target = Target::testbed(ServerProfile::litespeed(), SiteSpec::benchmark());
        let report = attack(&target, 4);
        assert_eq!(report.leaked_octets, 0, "nothing escapes at all");
        assert!(report.pinned_octets > 1_000_000);
    }
}
