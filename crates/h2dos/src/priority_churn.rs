//! Priority-tree churn (§VI, third concern): "malicious clients may
//! exploit this mechanism to launch algorithmic complexity attacks (e.g.,
//! force the server to frequently reconstruct the dependency tree)".
//!
//! The attacker builds a deep dependency chain with PRIORITY frames (no
//! requests at all — PRIORITY is legal on idle streams) and then keeps
//! reversing it with exclusive reprioritizations. Every frame costs the
//! server a subtree move; none of the streams will ever carry a request.

use h2scope::{ProbeConn, Target};
use h2wire::{Frame, PriorityFrame, PrioritySpec, Settings, StreamId};

/// Result of one churn engagement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnReport {
    /// PRIORITY frames the attacker sent.
    pub frames_sent: u64,
    /// Octets the attacker transmitted.
    pub attacker_octets: u64,
    /// Nodes retained in the victim's dependency tree afterwards.
    pub tree_nodes: usize,
    /// Nodes remaining after the victim applies the pruning mitigation.
    pub tree_nodes_after_prune: usize,
}

/// Builds a chain of `depth` idle streams and reverses it `rounds` times
/// using exclusive reprioritization.
pub fn attack(target: &Target, depth: u32, rounds: u32) -> ChurnReport {
    let mut conn = ProbeConn::establish(target, Settings::new(), 0xc4u64);
    conn.exchange();
    let mut frames_sent = 0u64;
    let mut attacker_octets = 24 + 9 + 6u64;

    let dep = |stream: u32, parent: u32, exclusive: bool| {
        Frame::Priority(PriorityFrame {
            stream_id: StreamId::new(stream),
            spec: PrioritySpec {
                exclusive,
                dependency: StreamId::new(parent),
                weight: 256,
            },
        })
    };

    // Build the chain 1 <- 3 <- 5 <- ... on idle streams.
    let ids: Vec<u32> = (0..depth).map(|k| 2 * k + 1).collect();
    let mut batch = Vec::new();
    for w in ids.windows(2) {
        batch.push(dep(w[1], w[0], false));
    }
    frames_sent = frames_sent.saturating_add(batch.len() as u64);
    attacker_octets = attacker_octets.saturating_add((batch.len() as u64).saturating_mul(14));
    conn.send_all(&batch);
    conn.exchange();

    // Each round: yank the chain tail to the root exclusively (adopting
    // everything), then push it back under the old head — maximal subtree
    // movement per frame.
    let tail = *ids.last().expect("nonempty chain");
    let head = ids[0];
    for _ in 0..rounds {
        let storm = vec![dep(tail, 0, true), dep(tail, head, false)];
        frames_sent = frames_sent.saturating_add(storm.len() as u64);
        attacker_octets = attacker_octets.saturating_add((storm.len() as u64).saturating_mul(14));
        conn.send_all(&storm);
        conn.exchange();
    }

    let tree = conn.server().core().priority();
    let tree_nodes = tree.len();
    // The mitigation: the victim prunes streams that are not active (all
    // of them — none ever carried a request).
    let mut pruned = tree.clone();
    pruned.prune(|_| false);
    ChurnReport {
        frames_sent,
        attacker_octets,
        tree_nodes,
        tree_nodes_after_prune: pruned.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2server::{ServerProfile, SiteSpec};

    fn target() -> Target {
        Target::testbed(ServerProfile::h2o(), SiteSpec::benchmark())
    }

    #[test]
    fn idle_priority_frames_grow_the_tree_for_free() {
        let report = attack(&target(), 64, 10);
        assert_eq!(
            report.tree_nodes, 64,
            "one node per idle stream: {report:?}"
        );
        assert!(report.attacker_octets < 2_500, "{report:?}");
    }

    #[test]
    fn pruning_reclaims_everything() {
        let report = attack(&target(), 128, 5);
        assert_eq!(report.tree_nodes, 128);
        assert_eq!(report.tree_nodes_after_prune, 0);
    }

    #[test]
    fn server_survives_a_large_storm_consistently() {
        // 256-deep chain reversed 50 times: the engine must stay sound.
        let report = attack(&target(), 256, 50);
        assert_eq!(report.frames_sent as usize, 255 + 100);
        assert_eq!(report.tree_nodes, 256);
    }

    #[test]
    fn priority_ignoring_servers_still_track_the_tree_state() {
        // Even FCFS servers (Nginx) maintain the tree in our engine; the
        // attack surface is the state, not the scheduler.
        let target = Target::testbed(ServerProfile::nginx(), SiteSpec::benchmark());
        let report = attack(&target, 32, 3);
        assert_eq!(report.tree_nodes, 32);
    }
}
