//! # netsim — deterministic discrete-event network substrate
//!
//! Replaces the live Internet in this reproduction. Everything the paper's
//! measurement pipeline touches on the network side is modeled here:
//!
//! * [`time`] — virtual clock ([`SimTime`], [`SimDuration`]).
//! * [`link`] — propagation delay, serialization bandwidth, jitter, and
//!   loss-as-retransmission-delay ([`LinkSpec`]).
//! * [`pipe`] — the client↔server byte transport with a time-ordered
//!   delivery loop ([`Pipe`], [`ByteEndpoint`]).
//! * [`tls`] — ALPN/NPN application-protocol negotiation semantics
//!   (crypto-free; only the negotiation direction matters to H2Scope).
//! * [`rtt`] — ICMP echo and TCP-handshake RTT estimators (Figure 6
//!   baselines).
//! * [`http1`] — a minimal HTTP/1.1 origin for the fourth RTT estimator.
//!
//! Determinism: every stochastic choice (jitter, loss) draws from a seeded
//! RNG owned by the component, so whole measurement campaigns replay
//! bit-identically from a campaign seed.
//!
//! ```
//! use netsim::{LinkSpec, Pipe, SimDuration};
//! use netsim::http1::{get_request, parse_status, Http1Server};
//!
//! let server = Http1Server::new("demo/1.0", SimDuration::from_millis(5));
//! let mut pipe = Pipe::connect(server, LinkSpec::wan(20), 42);
//! pipe.client_send(&get_request("example.com", "/"));
//! let arrivals = pipe.run_to_quiescence();
//! assert_eq!(parse_status(&arrivals[0].bytes), Some(200));
//! ```

#![warn(missing_docs)]

pub mod http1;
pub mod link;
pub mod pipe;
pub mod rtt;
pub mod time;
pub mod tls;

pub use link::LinkSpec;
pub use pipe::{Arrival, ByteEndpoint, Pipe, PipeFaults, RunOutcome};
pub use time::{SimDuration, SimTime};
pub use tls::{handshake, TlsConfig, TlsHandshake};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinkSpec>();
        assert_send_sync::<SimTime>();
        assert_send_sync::<TlsConfig>();
    }
}
