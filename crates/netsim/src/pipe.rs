//! A bidirectional byte pipe between a driver (client) and a
//! [`ByteEndpoint`] (server), with per-direction link models and a
//! time-ordered delivery loop.

use std::collections::BinaryHeap;

use h2obs::Obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::link::LinkSpec;
use crate::time::{SimDuration, SimTime};

/// A passive endpoint driven by byte arrivals (every server in this
/// workspace implements it).
///
/// Both byte hooks *append* to a caller-provided `out` buffer instead of
/// returning a fresh `Vec<u8>`: the delivery loop hands endpoints pooled
/// scratch buffers, so a steady-state probe round-trip performs O(1) heap
/// allocations. Tests that want the old allocating shape can call
/// [`ByteEndpoint::on_connect_vec`] / [`ByteEndpoint::on_bytes_vec`].
pub trait ByteEndpoint {
    /// Called once when the transport connects; appends bytes the endpoint
    /// sends unprompted (e.g. the server's SETTINGS frame) to `out`.
    fn on_connect(&mut self, now: SimTime, out: &mut Vec<u8>) {
        let _ = (now, out);
    }

    /// Called for each delivered segment; appends the response to `out`.
    fn on_bytes(&mut self, now: SimTime, bytes: &[u8], out: &mut Vec<u8>);

    /// Fixed per-exchange processing delay (used by the RTT experiments to
    /// model request handling time).
    fn processing_delay(&self) -> SimDuration {
        SimDuration::ZERO
    }

    /// `true` when the endpoint wants the transport torn down with a TCP
    /// reset (byzantine mid-stream resets). Checked after every
    /// [`ByteEndpoint::on_bytes`] call.
    fn wants_reset(&self) -> bool {
        false
    }

    /// Allocating convenience wrapper around [`ByteEndpoint::on_connect`].
    fn on_connect_vec(&mut self, now: SimTime) -> Vec<u8> {
        let mut out = Vec::new();
        self.on_connect(now, &mut out);
        out
    }

    /// Allocating convenience wrapper around [`ByteEndpoint::on_bytes`].
    fn on_bytes_vec(&mut self, now: SimTime, bytes: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.on_bytes(now, bytes, &mut out);
        out
    }
}

/// A small free-list of byte buffers, reused across deliveries so the
/// steady-state transport path stops allocating. Buffers handed out keep
/// their capacity; buffers put back are cleared.
#[derive(Debug, Default)]
pub struct BytesPool {
    free: Vec<Vec<u8>>,
}

impl BytesPool {
    /// Pool depth cap: beyond this, returned buffers are simply dropped
    /// (enough for a full request/response pipeline without hoarding).
    const MAX_POOLED: usize = 16;

    /// Takes a cleared buffer from the pool (or a fresh one when empty).
    pub fn take(&mut self) -> Vec<u8> {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        if self.free.len() < Self::MAX_POOLED && buf.capacity() > 0 {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Buffers currently pooled.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// True when no buffers are pooled.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Drains another pool's buffers into this one (up to the depth
    /// cap). Lets a connection's warmed pool outlive the connection:
    /// a scan worker seeds each new [`Pipe`] with the previous pipe's
    /// pool instead of re-growing allocations from nothing.
    pub fn absorb(&mut self, other: BytesPool) {
        for buf in other.free {
            if self.free.len() >= Self::MAX_POOLED {
                break;
            }
            self.free.push(buf);
        }
    }
}

/// Transport-level fault injection: scheduled connection cuts and
/// black-hole stalls, layered onto a [`Pipe`] without disturbing its
/// random stream (a default `PipeFaults` is a strict no-op).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipeFaults {
    /// Cut the connection (TCP reset) once this many octets have crossed
    /// it, in both directions combined.
    pub drop_after_bytes: Option<u64>,
    /// Cut the connection at this virtual time.
    pub drop_at: Option<SimTime>,
    /// Silently discard every delivery after this many octets have
    /// crossed: the connection looks open but nothing ever arrives (the
    /// stalled-forever link; `Some(0)` black-holes from the first byte).
    pub stall_after_bytes: Option<u64>,
}

impl PipeFaults {
    /// No injected faults (the default).
    pub fn none() -> PipeFaults {
        PipeFaults::default()
    }

    /// `true` when no fault is armed.
    pub fn is_none(&self) -> bool {
        *self == PipeFaults::default()
    }
}

/// How a delivery-loop run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every queued delivery was processed.
    Quiescent,
    /// Deliveries remain, but the next one is past the caller's deadline.
    DeadlineExpired,
    /// The connection was cut (scheduled fault or endpoint-requested
    /// reset); nothing further will ever arrive.
    ConnectionReset,
}

#[derive(Debug)]
struct Delivery {
    at: SimTime,
    seq: u64,
    bytes: Vec<u8>,
    to_server: bool,
}

impl PartialEq for Delivery {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Delivery {}
impl PartialOrd for Delivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A segment that arrived at the client side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual arrival time.
    pub at: SimTime,
    /// Payload.
    pub bytes: Vec<u8>,
}

/// The simulated transport connection between the probe (client) and a
/// server endpoint.
///
/// The client side is driven externally (probes decide what to send and
/// when); the server side is a [`ByteEndpoint`] invoked by the delivery
/// loop. All timing — propagation, serialization, jitter, retransmission
/// penalties, and server processing delay — accrues on the virtual clock.
#[derive(Debug)]
pub struct Pipe<E> {
    server: E,
    uplink: LinkSpec,
    downlink: LinkSpec,
    clock: SimTime,
    queue: BinaryHeap<Delivery>,
    seq: u64,
    up_busy: SimTime,
    down_busy: SimTime,
    /// Reliable byte streams deliver in order: a segment delayed by jitter
    /// or retransmission holds back everything behind it (TCP head-of-line
    /// blocking). These clamps keep per-direction arrivals monotonic.
    up_last_arrival: SimTime,
    down_last_arrival: SimTime,
    rng: StdRng,
    inbox: Vec<Arrival>,
    pool: BytesPool,
    faults: PipeFaults,
    reset: bool,
    obs: Obs,
    /// Total octets delivered to the client (response volume accounting).
    pub bytes_to_client: u64,
    /// Total octets delivered to the server.
    pub bytes_to_server: u64,
}

impl<E: ByteEndpoint> Pipe<E> {
    /// Connects to `server` over a symmetric `link`, invoking
    /// [`ByteEndpoint::on_connect`].
    pub fn connect(server: E, link: LinkSpec, seed: u64) -> Pipe<E> {
        Pipe::connect_asymmetric(server, link, link, seed)
    }

    /// [`Pipe::connect`] seeded with an existing (typically warmed)
    /// buffer pool — see [`BytesPool::absorb`]. The pool's buffers are
    /// all cleared ([`BytesPool::put`] clears on return), so a warmed
    /// pool changes allocation behavior only, never delivered bytes.
    pub fn connect_pooled(server: E, link: LinkSpec, seed: u64, pool: BytesPool) -> Pipe<E> {
        Pipe::connect_asymmetric_pooled(server, link, link, seed, pool)
    }

    /// Connects with distinct uplink/downlink characteristics.
    pub fn connect_asymmetric(
        server: E,
        uplink: LinkSpec,
        downlink: LinkSpec,
        seed: u64,
    ) -> Pipe<E> {
        Pipe::connect_asymmetric_pooled(server, uplink, downlink, seed, BytesPool::default())
    }

    /// [`Pipe::connect_asymmetric`] seeded with an existing buffer pool.
    pub fn connect_asymmetric_pooled(
        server: E,
        uplink: LinkSpec,
        downlink: LinkSpec,
        seed: u64,
        pool: BytesPool,
    ) -> Pipe<E> {
        let mut pipe = Pipe {
            server,
            uplink,
            downlink,
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            up_busy: SimTime::ZERO,
            down_busy: SimTime::ZERO,
            up_last_arrival: SimTime::ZERO,
            down_last_arrival: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            inbox: Vec::new(),
            pool,
            faults: PipeFaults::default(),
            reset: false,
            obs: Obs::off(),
            bytes_to_client: 0,
            bytes_to_server: 0,
        };
        let mut greeting = pipe.pool.take();
        pipe.server.on_connect(SimTime::ZERO, &mut greeting);
        if greeting.is_empty() {
            pipe.pool.put(greeting);
        } else {
            let (arrival, busy) = pipe.downlink.schedule(
                SimTime::ZERO,
                pipe.down_busy,
                greeting.len(),
                &mut pipe.rng,
            );
            pipe.down_busy = busy;
            pipe.down_last_arrival = arrival;
            pipe.enqueue(arrival, greeting, false);
        }
        pipe
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Access to the server endpoint (probes inspect server state in
    /// testbed mode).
    pub fn server(&self) -> &E {
        &self.server
    }

    /// Mutable access to the server endpoint.
    pub fn server_mut(&mut self) -> &mut E {
        &mut self.server
    }

    /// Arms transport-level fault injection. A default [`PipeFaults`] is a
    /// strict no-op: it adds no checks that consume randomness and changes
    /// no delivery timing.
    pub fn set_faults(&mut self, faults: PipeFaults) {
        self.faults = faults;
    }

    /// Attaches an observability handle. Like [`Pipe::set_faults`], the
    /// default (`Obs::off()`) is a strict no-op: recording wire bytes never
    /// consumes randomness or perturbs delivery timing.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// `true` once the connection has been cut by a fault or an
    /// endpoint-requested reset.
    pub fn is_reset(&self) -> bool {
        self.reset
    }

    /// Queues client bytes for delivery to the server at the appropriate
    /// link-modeled time. Silently dropped once the connection is reset.
    /// Borrows: the payload is copied into a pooled buffer, so callers can
    /// reuse their own scratch space across sends.
    pub fn client_send(&mut self, bytes: &[u8]) {
        if bytes.is_empty() || self.reset {
            return;
        }
        let (arrival, busy) =
            self.uplink
                .schedule(self.clock, self.up_busy, bytes.len(), &mut self.rng);
        self.up_busy = busy;
        let arrival = arrival.max(self.up_last_arrival);
        self.up_last_arrival = arrival;
        let mut buf = self.pool.take();
        buf.extend_from_slice(bytes);
        self.enqueue(arrival, buf, true);
    }

    /// Hands a buffer back to the pipe's buffer pool. Clients that have
    /// finished with an [`Arrival`]'s payload can return it here so the
    /// next delivery reuses the allocation.
    pub fn recycle(&mut self, bytes: Vec<u8>) {
        self.pool.put(bytes);
    }

    /// Takes the pipe's buffer pool, leaving an empty one behind — called
    /// when tearing a connection down so the warmed buffers can seed the
    /// worker's next connection (see [`Pipe::connect_pooled`]).
    pub fn take_pool(&mut self) -> BytesPool {
        std::mem::take(&mut self.pool)
    }

    /// Runs the delivery loop until no deliveries remain, returning every
    /// segment that reached the client (time-stamped, in arrival order).
    /// The clock advances to the last processed event.
    pub fn run_to_quiescence(&mut self) -> Vec<Arrival> {
        self.run(None).0
    }

    /// Runs the delivery loop, but stops before processing any delivery
    /// scheduled after `deadline` (the clock then rests at `deadline`).
    /// Returns the segments that reached the client plus how the run
    /// ended. Deliveries past the deadline stay queued.
    pub fn run_until(&mut self, deadline: SimTime) -> (Vec<Arrival>, RunOutcome) {
        self.run(Some(deadline))
    }

    fn run(&mut self, deadline: Option<SimTime>) -> (Vec<Arrival>, RunOutcome) {
        let mut outcome = if self.reset {
            RunOutcome::ConnectionReset
        } else {
            RunOutcome::Quiescent
        };
        while !self.reset {
            let Some(next_at) = self.queue.peek().map(|d| d.at) else {
                break;
            };
            if let Some(deadline) = deadline {
                if next_at > deadline {
                    self.clock = self.clock.max(deadline);
                    outcome = RunOutcome::DeadlineExpired;
                    break;
                }
            }
            let delivery = self.queue.pop().expect("peeked above");
            if let Some(cut_at) = self.faults.drop_at {
                if delivery.at >= cut_at {
                    self.clock = self.clock.max(cut_at);
                    self.cut();
                    outcome = RunOutcome::ConnectionReset;
                    break;
                }
            }
            self.clock = self.clock.max(delivery.at);
            if let Some(limit) = self.faults.stall_after_bytes {
                if self.bytes_to_server + self.bytes_to_client >= limit {
                    self.pool.put(delivery.bytes);
                    continue; // black hole: the segment never arrives
                }
            }
            if delivery.to_server {
                self.bytes_to_server += delivery.bytes.len() as u64;
                self.obs.wire_bytes(true, delivery.bytes.len() as u64);
                let mut response = self.pool.take();
                self.server
                    .on_bytes(self.clock, &delivery.bytes, &mut response);
                self.pool.put(delivery.bytes);
                if self.server.wants_reset() {
                    self.pool.put(response);
                    self.cut();
                    outcome = RunOutcome::ConnectionReset;
                    break;
                }
                if response.is_empty() {
                    self.pool.put(response);
                } else {
                    let ready = self.clock + self.server.processing_delay();
                    let (arrival, busy) = self.downlink.schedule(
                        ready,
                        self.down_busy,
                        response.len(),
                        &mut self.rng,
                    );
                    self.down_busy = busy;
                    let arrival = arrival.max(self.down_last_arrival);
                    self.down_last_arrival = arrival;
                    self.enqueue(arrival, response, false);
                }
            } else {
                self.bytes_to_client += delivery.bytes.len() as u64;
                self.obs.wire_bytes(false, delivery.bytes.len() as u64);
                self.inbox.push(Arrival {
                    at: delivery.at,
                    bytes: delivery.bytes,
                });
            }
            if let Some(limit) = self.faults.drop_after_bytes {
                if self.bytes_to_server + self.bytes_to_client >= limit {
                    self.cut();
                    outcome = RunOutcome::ConnectionReset;
                    break;
                }
            }
        }
        (std::mem::take(&mut self.inbox), outcome)
    }

    fn cut(&mut self) {
        self.reset = true;
        while let Some(delivery) = self.queue.pop() {
            self.pool.put(delivery.bytes);
        }
    }

    /// Advances the clock without traffic (think `sleep`).
    pub fn advance(&mut self, d: SimDuration) {
        self.clock += d;
    }

    fn enqueue(&mut self, at: SimTime, bytes: Vec<u8>, to_server: bool) {
        self.seq += 1;
        self.queue.push(Delivery {
            at,
            seq: self.seq,
            bytes,
            to_server,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every segment back verbatim.
    struct Echo {
        delay: SimDuration,
    }

    impl ByteEndpoint for Echo {
        fn on_connect(&mut self, _now: SimTime, out: &mut Vec<u8>) {
            out.extend_from_slice(b"hello");
        }
        fn on_bytes(&mut self, _now: SimTime, bytes: &[u8], out: &mut Vec<u8>) {
            out.extend_from_slice(bytes);
        }
        fn processing_delay(&self) -> SimDuration {
            self.delay
        }
    }

    fn clean_link(delay_ms: u64) -> LinkSpec {
        LinkSpec {
            delay: SimDuration::from_millis(delay_ms),
            jitter: SimDuration::ZERO,
            bandwidth_bps: None,
            loss: 0.0,
            retransmit_penalty: SimDuration::ZERO,
        }
    }

    #[test]
    fn greeting_arrives_after_one_way_delay() {
        let mut pipe = Pipe::connect(
            Echo {
                delay: SimDuration::ZERO,
            },
            clean_link(10),
            1,
        );
        let arrivals = pipe.run_to_quiescence();
        assert_eq!(arrivals.len(), 1);
        assert_eq!(arrivals[0].bytes, b"hello");
        assert_eq!(arrivals[0].at, SimTime::ZERO + SimDuration::from_millis(10));
    }

    #[test]
    fn echo_round_trip_takes_two_one_way_delays() {
        let mut pipe = Pipe::connect(
            Echo {
                delay: SimDuration::ZERO,
            },
            clean_link(10),
            1,
        );
        pipe.run_to_quiescence(); // drain greeting
        let t0 = pipe.now();
        pipe.client_send(b"ping");
        let arrivals = pipe.run_to_quiescence();
        assert_eq!(arrivals.len(), 1);
        assert_eq!(arrivals[0].at - t0, SimDuration::from_millis(20));
    }

    #[test]
    fn processing_delay_adds_to_round_trip() {
        let mut pipe = Pipe::connect(
            Echo {
                delay: SimDuration::from_millis(7),
            },
            clean_link(10),
            1,
        );
        pipe.run_to_quiescence();
        let t0 = pipe.now();
        pipe.client_send(b"ping");
        let arrivals = pipe.run_to_quiescence();
        assert_eq!(arrivals[0].at - t0, SimDuration::from_millis(27));
    }

    #[test]
    fn deliveries_are_time_ordered() {
        let mut pipe = Pipe::connect(
            Echo {
                delay: SimDuration::ZERO,
            },
            clean_link(5),
            1,
        );
        pipe.run_to_quiescence();
        pipe.client_send(b"a");
        pipe.client_send(b"b");
        pipe.client_send(b"c");
        let arrivals = pipe.run_to_quiescence();
        assert_eq!(arrivals.len(), 3);
        assert!(arrivals.windows(2).all(|w| w[0].at <= w[1].at));
        let payloads: Vec<&[u8]> = arrivals.iter().map(|a| a.bytes.as_slice()).collect();
        assert_eq!(payloads, vec![b"a".as_slice(), b"b", b"c"]);
    }

    #[test]
    fn run_until_leaves_late_deliveries_queued() {
        let mut pipe = Pipe::connect(
            Echo {
                delay: SimDuration::ZERO,
            },
            clean_link(10),
            1,
        );
        // The greeting arrives at t=10ms; a 5ms deadline misses it.
        let deadline = SimTime::ZERO + SimDuration::from_millis(5);
        let (arrivals, outcome) = pipe.run_until(deadline);
        assert!(arrivals.is_empty());
        assert_eq!(outcome, RunOutcome::DeadlineExpired);
        assert_eq!(pipe.now(), deadline);
        // A later run picks the delivery back up.
        let (arrivals, outcome) = pipe.run_until(SimTime::ZERO + SimDuration::from_millis(20));
        assert_eq!(arrivals.len(), 1);
        assert_eq!(outcome, RunOutcome::Quiescent);
    }

    #[test]
    fn run_until_matches_quiescence_when_deadline_is_generous() {
        let mk = || {
            Pipe::connect(
                Echo {
                    delay: SimDuration::ZERO,
                },
                clean_link(10),
                9,
            )
        };
        let mut a = mk();
        let mut b = mk();
        a.client_send(b"ping");
        b.client_send(b"ping");
        let via_quiescence = a.run_to_quiescence();
        let (via_deadline, outcome) = b.run_until(SimTime::ZERO + SimDuration::from_secs(60));
        assert_eq!(via_quiescence, via_deadline);
        assert_eq!(outcome, RunOutcome::Quiescent);
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn drop_after_bytes_cuts_the_connection() {
        let mut pipe = Pipe::connect(
            Echo {
                delay: SimDuration::ZERO,
            },
            clean_link(1),
            1,
        );
        pipe.set_faults(PipeFaults {
            drop_after_bytes: Some(10),
            ..PipeFaults::none()
        });
        pipe.run_to_quiescence(); // greeting: 5 octets, under the limit
        assert!(!pipe.is_reset());
        pipe.client_send(&[0u8; 20]);
        let (arrivals, outcome) = pipe.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(outcome, RunOutcome::ConnectionReset);
        assert!(arrivals.is_empty(), "the echo died with the connection");
        assert!(pipe.is_reset());
        // Sends after the reset are swallowed.
        pipe.client_send(b"more");
        let (arrivals, outcome) = pipe.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        assert!(arrivals.is_empty());
        assert_eq!(outcome, RunOutcome::ConnectionReset);
    }

    #[test]
    fn drop_at_cuts_at_the_scheduled_time() {
        let mut pipe = Pipe::connect(
            Echo {
                delay: SimDuration::ZERO,
            },
            clean_link(10),
            1,
        );
        pipe.set_faults(PipeFaults {
            drop_at: Some(SimTime::ZERO + SimDuration::from_millis(5)),
            ..PipeFaults::none()
        });
        let (arrivals, outcome) = pipe.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert!(arrivals.is_empty());
        assert_eq!(outcome, RunOutcome::ConnectionReset);
        assert_eq!(pipe.now(), SimTime::ZERO + SimDuration::from_millis(5));
    }

    #[test]
    fn stalled_link_black_holes_without_resetting() {
        let mut pipe = Pipe::connect(
            Echo {
                delay: SimDuration::ZERO,
            },
            clean_link(10),
            1,
        );
        pipe.set_faults(PipeFaults {
            stall_after_bytes: Some(0),
            ..PipeFaults::none()
        });
        pipe.client_send(b"ping");
        let (arrivals, outcome) = pipe.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert!(arrivals.is_empty(), "everything vanished in transit");
        assert_eq!(outcome, RunOutcome::Quiescent, "the connection looks open");
        assert!(!pipe.is_reset());
        assert_eq!(pipe.bytes_to_server + pipe.bytes_to_client, 0);
    }

    /// Endpoint that demands a TCP reset after its first reply.
    struct ResettingEcho {
        replied: bool,
    }

    impl ByteEndpoint for ResettingEcho {
        fn on_bytes(&mut self, _now: SimTime, bytes: &[u8], out: &mut Vec<u8>) {
            self.replied = true;
            out.extend_from_slice(bytes);
        }
        fn wants_reset(&self) -> bool {
            self.replied
        }
    }

    #[test]
    fn endpoint_requested_reset_cuts_the_connection() {
        let mut pipe = Pipe::connect(ResettingEcho { replied: false }, clean_link(1), 1);
        pipe.client_send(b"hello");
        let (arrivals, outcome) = pipe.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert!(arrivals.is_empty(), "the reset beat the reply");
        assert_eq!(outcome, RunOutcome::ConnectionReset);
    }

    #[test]
    fn default_faults_are_a_noop() {
        let mk = |faulted: bool| {
            let mut pipe = Pipe::connect(
                Echo {
                    delay: SimDuration::from_millis(2),
                },
                LinkSpec {
                    loss: 0.3,
                    jitter: SimDuration::from_millis(4),
                    ..LinkSpec::wan(15)
                },
                77,
            );
            if faulted {
                pipe.set_faults(PipeFaults::none());
            }
            pipe.client_send(&[1u8; 3_000]);
            pipe.client_send(&[2u8; 500]);
            pipe.run_to_quiescence()
        };
        assert_eq!(mk(false), mk(true));
    }

    #[test]
    fn byte_counters_accumulate() {
        let mut pipe = Pipe::connect(
            Echo {
                delay: SimDuration::ZERO,
            },
            clean_link(1),
            1,
        );
        pipe.run_to_quiescence();
        pipe.client_send(&[0u8; 100]);
        pipe.run_to_quiescence();
        assert_eq!(pipe.bytes_to_server, 100);
        assert_eq!(pipe.bytes_to_client, 105); // greeting + echo
    }
}
