//! Virtual time for the discrete-event simulation.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration in virtual nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// As nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating multiply by a scalar.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Saturating add — for accumulators fed by unbounded inputs (retry
    /// backoff totals, fault budgets), where `u64::MAX` nanoseconds is a
    /// better answer than a wrap or a panic.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// An instant in virtual time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// From nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (a simulation logic bug).
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(earlier.0).expect("time went backwards"))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.0 as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert!((SimDuration::from_millis(2).as_millis_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn saturating_add_caps_at_max() {
        let max = SimDuration::from_nanos(u64::MAX);
        assert_eq!(max.saturating_add(SimDuration::from_secs(1)), max);
        assert_eq!(
            SimDuration::from_millis(1).saturating_add(SimDuration::from_millis(2)),
            SimDuration::from_millis(3)
        );
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(10);
        assert_eq!(t1 - t0, SimDuration::from_millis(10));
        assert_eq!(t0.max(t1), t1);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn negative_duration_panics() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_nanos(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_millis(1).to_string(), "1.000ms");
        assert_eq!(
            (SimTime::ZERO + SimDuration::from_micros(1500)).to_string(),
            "t=1.500ms"
        );
    }
}
