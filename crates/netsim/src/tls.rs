//! TLS handshake model with ALPN and NPN application-protocol negotiation
//! (RFC 7301 and the NPN draft).
//!
//! Cryptography is irrelevant to every measurement in the paper; what
//! matters is the *negotiation direction*, which the paper describes:
//! with ALPN the client offers a protocol list in ClientHello and the
//! server selects in ServerHello; with NPN the server advertises its list
//! and the client selects. H2Scope uses both to decide whether a site
//! speaks HTTP/2.

/// Application protocol identifiers used in negotiation.
pub const PROTO_H2: &str = "h2";
/// HTTP/1.1 over TLS.
pub const PROTO_HTTP11: &str = "http/1.1";
/// Legacy SPDY/3.1 (still advertised by some servers in 2016).
pub const PROTO_SPDY31: &str = "spdy/3.1";

/// A server's TLS negotiation configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlsConfig {
    /// Protocols selectable via ALPN, in server preference order.
    /// `None` disables the ALPN extension entirely (e.g. servers built
    /// against OpenSSL < 1.0.2, which the paper calls out).
    pub alpn: Option<Vec<String>>,
    /// Protocols advertised via NPN, in server preference order. `None`
    /// disables NPN (e.g. Apache in the paper's testbed).
    pub npn: Option<Vec<String>>,
}

impl TlsConfig {
    /// A server supporting h2 over both ALPN and NPN.
    pub fn h2_full() -> TlsConfig {
        TlsConfig {
            alpn: Some(vec![PROTO_H2.into(), PROTO_HTTP11.into()]),
            npn: Some(vec![
                PROTO_H2.into(),
                PROTO_SPDY31.into(),
                PROTO_HTTP11.into(),
            ]),
        }
    }

    /// A server supporting h2 via ALPN only (like Apache in Table III).
    pub fn h2_alpn_only() -> TlsConfig {
        TlsConfig {
            alpn: Some(vec![PROTO_H2.into(), PROTO_HTTP11.into()]),
            npn: None,
        }
    }

    /// A server that only speaks NPN (the paper found more than one
    /// hundred server types that "just speak NPN").
    pub fn h2_npn_only() -> TlsConfig {
        TlsConfig {
            npn: Some(vec![PROTO_H2.into(), PROTO_HTTP11.into()]),
            alpn: None,
        }
    }

    /// An HTTPS-only server with no h2 anywhere.
    pub fn http1_only() -> TlsConfig {
        TlsConfig {
            alpn: Some(vec![PROTO_HTTP11.into()]),
            npn: Some(vec![PROTO_HTTP11.into()]),
        }
    }
}

/// Outcome of one TLS handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlsHandshake {
    /// Protocol agreed via ALPN, if the extension ran.
    pub alpn_selected: Option<String>,
    /// Protocol the client picked from the server's NPN list, if NPN ran.
    pub npn_selected: Option<String>,
}

impl TlsHandshake {
    /// `true` when either mechanism landed on `h2`.
    pub fn negotiated_h2(&self) -> bool {
        self.alpn_selected.as_deref() == Some(PROTO_H2)
            || self.npn_selected.as_deref() == Some(PROTO_H2)
    }
}

/// Runs the ALPN half: the client offers, the server selects the first of
/// *its own* preferences that the client also offered.
pub fn negotiate_alpn(server: &TlsConfig, client_offer: &[&str]) -> Option<String> {
    let server_list = server.alpn.as_ref()?;
    server_list
        .iter()
        .find(|p| client_offer.contains(&p.as_str()))
        .cloned()
}

/// Runs the NPN half: the server advertises, the client selects the first
/// of *its own* preferences present in the server list.
pub fn negotiate_npn(server: &TlsConfig, client_preference: &[&str]) -> Option<String> {
    let server_list = server.npn.as_ref()?;
    client_preference
        .iter()
        .find(|p| server_list.iter().any(|s| s == *p))
        .map(|p| (*p).to_string())
}

/// Performs a full handshake offering/preferring the given protocols via
/// both mechanisms, as H2Scope does.
pub fn handshake(server: &TlsConfig, client_protos: &[&str]) -> TlsHandshake {
    TlsHandshake {
        alpn_selected: negotiate_alpn(server, client_protos),
        npn_selected: negotiate_npn(server, client_protos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_h2_server_negotiates_h2_both_ways() {
        let hs = handshake(&TlsConfig::h2_full(), &[PROTO_H2, PROTO_HTTP11]);
        assert_eq!(hs.alpn_selected.as_deref(), Some(PROTO_H2));
        assert_eq!(hs.npn_selected.as_deref(), Some(PROTO_H2));
        assert!(hs.negotiated_h2());
    }

    #[test]
    fn alpn_only_server_has_no_npn_result() {
        let hs = handshake(&TlsConfig::h2_alpn_only(), &[PROTO_H2]);
        assert_eq!(hs.alpn_selected.as_deref(), Some(PROTO_H2));
        assert_eq!(hs.npn_selected, None);
        assert!(hs.negotiated_h2());
    }

    #[test]
    fn npn_only_server_has_no_alpn_result() {
        let hs = handshake(&TlsConfig::h2_npn_only(), &[PROTO_H2]);
        assert_eq!(hs.alpn_selected, None);
        assert_eq!(hs.npn_selected.as_deref(), Some(PROTO_H2));
        assert!(hs.negotiated_h2());
    }

    #[test]
    fn http1_server_never_lands_on_h2() {
        let hs = handshake(&TlsConfig::http1_only(), &[PROTO_H2, PROTO_HTTP11]);
        assert!(!hs.negotiated_h2());
        assert_eq!(hs.alpn_selected.as_deref(), Some(PROTO_HTTP11));
    }

    #[test]
    fn alpn_respects_server_preference_order() {
        let server = TlsConfig {
            alpn: Some(vec![PROTO_HTTP11.into(), PROTO_H2.into()]),
            npn: None,
        };
        // Server prefers http/1.1 even though the client offered h2 first.
        let selected = negotiate_alpn(&server, &[PROTO_H2, PROTO_HTTP11]);
        assert_eq!(selected.as_deref(), Some(PROTO_HTTP11));
    }

    #[test]
    fn npn_respects_client_preference_order() {
        let server = TlsConfig {
            npn: Some(vec![PROTO_HTTP11.into(), PROTO_H2.into()]),
            alpn: None,
        };
        // Client prefers h2; with NPN the client chooses.
        let selected = negotiate_npn(&server, &[PROTO_H2, PROTO_HTTP11]);
        assert_eq!(selected.as_deref(), Some(PROTO_H2));
    }

    #[test]
    fn no_common_protocol_yields_none() {
        let server = TlsConfig {
            alpn: Some(vec![PROTO_SPDY31.into()]),
            npn: None,
        };
        assert_eq!(negotiate_alpn(&server, &[PROTO_H2]), None);
    }
}
