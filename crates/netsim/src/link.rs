//! Link model: propagation delay, serialization bandwidth, jitter, and
//! loss-induced retransmission delay.

use rand::Rng;

use crate::time::{SimDuration, SimTime};

/// Characteristics of one direction of a network path.
///
/// Loss is modeled as *retransmission delay* rather than byte corruption:
/// every endpoint in this workspace speaks over a reliable TCP-like
/// transport, where a lost segment shows up to the application as added
/// latency, not missing bytes. Datagram probes (ICMP) sample loss
/// directly via [`LinkSpec::datagram_lost`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Uniform jitter added per transmission, `0..=jitter`.
    pub jitter: SimDuration,
    /// Serialization bandwidth in bits per second (`None` = infinite).
    pub bandwidth_bps: Option<u64>,
    /// Per-transmission loss probability in `[0, 1)`.
    pub loss: f64,
    /// Extra delay charged when a segment is "lost" and retransmitted.
    pub retransmit_penalty: SimDuration,
}

impl Default for LinkSpec {
    fn default() -> LinkSpec {
        LinkSpec::lan()
    }
}

impl LinkSpec {
    /// A fast, clean LAN path: 0.2 ms one-way, 1 Gbps, no loss.
    pub fn lan() -> LinkSpec {
        LinkSpec {
            delay: SimDuration::from_micros(200),
            jitter: SimDuration::ZERO,
            bandwidth_bps: Some(1_000_000_000),
            loss: 0.0,
            retransmit_penalty: SimDuration::from_millis(200),
        }
    }

    /// A typical WAN path with the given one-way delay in milliseconds.
    pub fn wan(delay_ms: u64) -> LinkSpec {
        LinkSpec {
            delay: SimDuration::from_millis(delay_ms),
            jitter: SimDuration::from_micros(delay_ms * 20), // 2% jitter
            bandwidth_bps: Some(100_000_000),
            loss: 0.0,
            retransmit_penalty: SimDuration::from_millis(200),
        }
    }

    /// A lossy mobile path (the discussion section's scenario).
    pub fn mobile(delay_ms: u64, loss: f64) -> LinkSpec {
        LinkSpec {
            delay: SimDuration::from_millis(delay_ms),
            jitter: SimDuration::from_millis(delay_ms / 5),
            bandwidth_bps: Some(20_000_000),
            loss,
            retransmit_penalty: SimDuration::from_millis(300),
        }
    }

    /// Serialization time for `bytes` octets at this link's bandwidth.
    pub fn serialization_time(&self, bytes: usize) -> SimDuration {
        match self.bandwidth_bps {
            Some(bps) if bps > 0 => {
                SimDuration::from_nanos((bytes as u64 * 8).saturating_mul(1_000_000_000) / bps)
            }
            _ => SimDuration::ZERO,
        }
    }

    /// Total one-way latency for a transmission of `bytes` octets,
    /// sampling jitter and loss from `rng`.
    pub fn transit_time(&self, bytes: usize, rng: &mut impl Rng) -> SimDuration {
        let mut total = self.delay + self.serialization_time(bytes);
        if self.jitter > SimDuration::ZERO {
            total = total + SimDuration::from_nanos(rng.gen_range(0..=self.jitter.as_nanos()));
        }
        if self.loss > 0.0 && rng.gen_bool(self.loss.min(0.999_999)) {
            total = total + self.retransmit_penalty;
        }
        total
    }

    /// Whether a single datagram is dropped outright (ICMP-style).
    pub fn datagram_lost(&self, rng: &mut impl Rng) -> bool {
        self.loss > 0.0 && rng.gen_bool(self.loss.min(0.999_999))
    }

    /// Schedules a transmission on a serialized link: given the link is
    /// busy until `busy_until` and the send is requested at `now`, returns
    /// `(arrival_time, new_busy_until)`.
    pub fn schedule(
        &self,
        now: SimTime,
        busy_until: SimTime,
        bytes: usize,
        rng: &mut impl Rng,
    ) -> (SimTime, SimTime) {
        let start = now.max(busy_until);
        let tx_done = start + self.serialization_time(bytes);
        let mut arrival = tx_done + self.delay;
        if self.jitter > SimDuration::ZERO {
            arrival += SimDuration::from_nanos(rng.gen_range(0..=self.jitter.as_nanos()));
        }
        if self.loss > 0.0 && rng.gen_bool(self.loss.min(0.999_999)) {
            arrival += self.retransmit_penalty;
        }
        (arrival, tx_done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn serialization_time_scales_with_bytes() {
        let link = LinkSpec {
            bandwidth_bps: Some(8_000_000),
            ..LinkSpec::lan()
        };
        // 8 Mbps = 1 byte per microsecond.
        assert_eq!(
            link.serialization_time(1_000),
            SimDuration::from_micros(1_000)
        );
        assert_eq!(link.serialization_time(0), SimDuration::ZERO);
    }

    #[test]
    fn infinite_bandwidth_serializes_instantly() {
        let link = LinkSpec {
            bandwidth_bps: None,
            ..LinkSpec::lan()
        };
        assert_eq!(link.serialization_time(1 << 20), SimDuration::ZERO);
    }

    #[test]
    fn clean_link_transit_is_deterministic() {
        let link = LinkSpec {
            delay: SimDuration::from_millis(10),
            jitter: SimDuration::ZERO,
            bandwidth_bps: None,
            loss: 0.0,
            retransmit_penalty: SimDuration::ZERO,
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            link.transit_time(500, &mut rng),
            SimDuration::from_millis(10)
        );
    }

    #[test]
    fn lossy_link_sometimes_pays_penalty() {
        let link = LinkSpec {
            delay: SimDuration::from_millis(1),
            jitter: SimDuration::ZERO,
            bandwidth_bps: None,
            loss: 0.5,
            retransmit_penalty: SimDuration::from_millis(100),
        };
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<SimDuration> = (0..100).map(|_| link.transit_time(1, &mut rng)).collect();
        let slow = samples
            .iter()
            .filter(|d| **d > SimDuration::from_millis(50))
            .count();
        assert!(
            (20..=80).contains(&slow),
            "retransmits in a plausible band: {slow}"
        );
    }

    #[test]
    fn schedule_serializes_back_to_back_sends() {
        let link = LinkSpec {
            delay: SimDuration::from_millis(5),
            jitter: SimDuration::ZERO,
            bandwidth_bps: Some(8_000_000), // 1 byte/us
            loss: 0.0,
            retransmit_penalty: SimDuration::ZERO,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let (arrival1, busy1) = link.schedule(SimTime::ZERO, SimTime::ZERO, 1_000, &mut rng);
        assert_eq!(busy1, SimTime::ZERO + SimDuration::from_millis(1));
        assert_eq!(arrival1, SimTime::ZERO + SimDuration::from_millis(6));
        // Second send queued while the first is still serializing.
        let (arrival2, busy2) = link.schedule(SimTime::ZERO, busy1, 1_000, &mut rng);
        assert_eq!(busy2, SimTime::ZERO + SimDuration::from_millis(2));
        assert_eq!(arrival2, SimTime::ZERO + SimDuration::from_millis(7));
    }
}
