//! RTT estimators: ICMP echo and TCP three-way-handshake timing.
//!
//! These are the two non-HTTP baselines the paper compares HTTP/2 PING
//! against in Figure 6. Both measure pure network RTT — no server
//! application processing enters the path — which is why the paper finds
//! them nearly identical to h2-ping and systematically below the
//! HTTP/1.1 request estimator.

use rand::Rng;

use crate::link::LinkSpec;
use crate::time::SimDuration;

/// ICMP echo: one datagram out, one back. Returns `None` on packet loss
/// (ICMP has no retransmission).
pub fn icmp_rtt(link: &LinkSpec, rng: &mut impl Rng) -> Option<SimDuration> {
    if link.datagram_lost(rng) || link.datagram_lost(rng) {
        return None;
    }
    // 64-byte echo payload each way; kernel echo turnaround is immediate.
    let out = link.delay + link.serialization_time(64) + jitter(link, rng);
    let back = link.delay + link.serialization_time(64) + jitter(link, rng);
    Some(out + back)
}

/// TCP handshake RTT: SYN out, SYN/ACK back (kernel responds, no
/// application involvement). Loss is absorbed by retransmission delay as
/// in any reliable transport.
pub fn tcp_handshake_rtt(link: &LinkSpec, rng: &mut impl Rng) -> SimDuration {
    let syn = link.transit_time(60, rng);
    let syn_ack = link.transit_time(60, rng);
    syn + syn_ack
}

/// Collects `n` RTT samples with an estimator, discarding losses.
pub fn sample_rtts(
    n: usize,
    mut estimator: impl FnMut() -> Option<SimDuration>,
) -> Vec<SimDuration> {
    (0..n).filter_map(|_| estimator()).collect()
}

fn jitter(link: &LinkSpec, rng: &mut impl Rng) -> SimDuration {
    if link.jitter == SimDuration::ZERO {
        SimDuration::ZERO
    } else {
        SimDuration::from_nanos(rng.gen_range(0..=link.jitter.as_nanos()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clean(delay_ms: u64) -> LinkSpec {
        LinkSpec {
            delay: SimDuration::from_millis(delay_ms),
            jitter: SimDuration::ZERO,
            bandwidth_bps: None,
            loss: 0.0,
            retransmit_penalty: SimDuration::from_millis(200),
        }
    }

    #[test]
    fn icmp_rtt_is_twice_one_way_delay_on_clean_link() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            icmp_rtt(&clean(25), &mut rng),
            Some(SimDuration::from_millis(50))
        );
    }

    #[test]
    fn tcp_handshake_matches_icmp_on_clean_link() {
        let mut rng = StdRng::seed_from_u64(1);
        let link = clean(25);
        let tcp = tcp_handshake_rtt(&link, &mut rng);
        let icmp = icmp_rtt(&link, &mut rng).unwrap();
        assert_eq!(tcp, icmp);
    }

    #[test]
    fn lossy_link_drops_some_icmp_samples() {
        let link = LinkSpec {
            loss: 0.3,
            ..clean(10)
        };
        let mut rng = StdRng::seed_from_u64(9);
        let samples = sample_rtts(200, || icmp_rtt(&link, &mut rng));
        assert!(samples.len() < 200, "some losses expected");
        assert!(samples.len() > 50, "not everything lost");
    }

    #[test]
    fn tcp_pays_retransmit_penalty_instead_of_losing_samples() {
        let link = LinkSpec {
            loss: 0.3,
            ..clean(10)
        };
        let mut rng = StdRng::seed_from_u64(9);
        let samples: Vec<SimDuration> = (0..200)
            .map(|_| tcp_handshake_rtt(&link, &mut rng))
            .collect();
        assert_eq!(samples.len(), 200, "TCP never loses a sample");
        assert!(samples.iter().any(|d| *d > SimDuration::from_millis(100)));
    }
}
