//! A minimal HTTP/1.1 server endpoint and request builder.
//!
//! Exists for one purpose: the paper's fourth RTT estimator (Figure 6)
//! times an HTTP/1.1 request/response exchange, which — unlike ICMP, the
//! TCP handshake, and HTTP/2 PING — includes the server's request
//! processing time. This module provides the substrate for reproducing
//! that systematic gap.

use crate::pipe::ByteEndpoint;
use crate::time::{SimDuration, SimTime};

/// A tiny HTTP/1.1 origin server.
#[derive(Debug, Clone)]
pub struct Http1Server {
    /// Server software name for the `Server:` header.
    pub server_name: String,
    /// Body returned for every request.
    pub body: Vec<u8>,
    /// Time spent handling each request (parsing, routing, rendering).
    pub processing_delay: SimDuration,
}

impl Http1Server {
    /// Creates a server with the given processing delay.
    pub fn new(server_name: impl Into<String>, processing_delay: SimDuration) -> Http1Server {
        Http1Server {
            server_name: server_name.into(),
            body: b"<html><body>ok</body></html>".to_vec(),
            processing_delay,
        }
    }
}

impl ByteEndpoint for Http1Server {
    fn on_bytes(&mut self, _now: SimTime, bytes: &[u8], out: &mut Vec<u8>) {
        let text = String::from_utf8_lossy(bytes);
        let Some(request_line) = text.lines().next() else {
            return;
        };
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("");
        let (status, body): (&str, &[u8]) = match method {
            "GET" | "HEAD" => ("200 OK", &self.body),
            "" => return,
            _ => ("405 Method Not Allowed", b""),
        };
        let body: &[u8] = if method == "HEAD" { b"" } else { body };
        use std::io::Write as _;
        let _ = write!(
            out,
            "HTTP/1.1 {status}\r\nServer: {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.server_name,
            body.len()
        );
        out.extend_from_slice(body);
    }

    fn processing_delay(&self) -> SimDuration {
        self.processing_delay
    }
}

/// Builds a plain HTTP/1.1 GET request.
pub fn get_request(host: &str, path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: {host}\r\nUser-Agent: h2scope/0.1\r\nAccept: */*\r\n\r\n")
        .into_bytes()
}

/// Extracts the status code from an HTTP/1.1 response, if parseable.
pub fn parse_status(response: &[u8]) -> Option<u16> {
    let text = std::str::from_utf8(response).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    if !parts.next()?.starts_with("HTTP/1.1") {
        return None;
    }
    parts.next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::pipe::Pipe;

    fn clean(delay_ms: u64) -> LinkSpec {
        LinkSpec {
            delay: SimDuration::from_millis(delay_ms),
            jitter: SimDuration::ZERO,
            bandwidth_bps: None,
            loss: 0.0,
            retransmit_penalty: SimDuration::ZERO,
        }
    }

    #[test]
    fn get_round_trip_includes_processing_delay() {
        let server = Http1Server::new("test/1.0", SimDuration::from_millis(8));
        let mut pipe = Pipe::connect(server, clean(10), 1);
        let t0 = pipe.now();
        pipe.client_send(&get_request("example.com", "/"));
        let arrivals = pipe.run_to_quiescence();
        assert_eq!(arrivals.len(), 1);
        assert_eq!(parse_status(&arrivals[0].bytes), Some(200));
        // 2 × 10ms network + 8ms processing.
        assert_eq!(arrivals[0].at - t0, SimDuration::from_millis(28));
    }

    #[test]
    fn head_omits_body() {
        let mut server = Http1Server::new("test/1.0", SimDuration::ZERO);
        let response = server.on_bytes_vec(SimTime::ZERO, b"HEAD / HTTP/1.1\r\n\r\n");
        let text = String::from_utf8(response).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn unsupported_method_is_405() {
        let mut server = Http1Server::new("test/1.0", SimDuration::ZERO);
        let response = server.on_bytes_vec(SimTime::ZERO, b"DELETE / HTTP/1.1\r\n\r\n");
        assert_eq!(parse_status(&response), Some(405));
    }

    #[test]
    fn parse_status_rejects_garbage() {
        assert_eq!(parse_status(b"not http"), None);
        assert_eq!(parse_status(&[0xff, 0xfe]), None);
    }
}
