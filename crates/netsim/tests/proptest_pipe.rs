//! Property-based tests for the transport pipe: in-order reliable
//! delivery under arbitrary traffic, jitter, and loss.

use netsim::pipe::{ByteEndpoint, Pipe};
use netsim::time::{SimDuration, SimTime};
use netsim::LinkSpec;
use proptest::prelude::*;

/// Echo server that tags each segment with a sequence number prefix.
#[derive(Default)]
struct SeqEcho {
    seen: u64,
}

impl ByteEndpoint for SeqEcho {
    fn on_bytes(&mut self, _now: SimTime, bytes: &[u8], out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seen.to_be_bytes());
        self.seen += 1;
        out.extend_from_slice(bytes);
    }
}

fn arb_link() -> impl Strategy<Value = LinkSpec> {
    (1u64..=80, 0u64..=5_000, 0.0f64..0.3).prop_map(|(delay_ms, jitter_us, loss)| LinkSpec {
        delay: SimDuration::from_millis(delay_ms),
        jitter: SimDuration::from_micros(jitter_us),
        bandwidth_bps: Some(50_000_000),
        loss,
        retransmit_penalty: SimDuration::from_millis(150),
    })
}

proptest! {
    /// Segments arrive in send order with monotonic timestamps, and every
    /// byte arrives exactly once — whatever the jitter and loss.
    #[test]
    fn delivery_is_reliable_and_ordered(
        link in arb_link(),
        seed in any::<u64>(),
        sizes in prop::collection::vec(1usize..2_000, 1..20),
    ) {
        let mut pipe = Pipe::connect(SeqEcho::default(), link, seed);
        for (i, size) in sizes.iter().enumerate() {
            pipe.client_send(&vec![i as u8; *size]);
        }
        let arrivals = pipe.run_to_quiescence();
        prop_assert_eq!(arrivals.len(), sizes.len());
        // Timestamps never go backwards.
        prop_assert!(arrivals.windows(2).all(|w| w[0].at <= w[1].at));
        // Server observed segments in order: the echoed sequence numbers
        // are 0..n and payload sizes match (+8-byte tag).
        for (i, (arrival, size)) in arrivals.iter().zip(&sizes).enumerate() {
            let seq = u64::from_be_bytes(arrival.bytes[..8].try_into().unwrap());
            prop_assert_eq!(seq, i as u64);
            prop_assert_eq!(arrival.bytes.len(), size + 8);
            prop_assert!(arrival.bytes[8..].iter().all(|&b| b == i as u8));
        }
    }

    /// The same seed replays the exact same timeline.
    #[test]
    fn timeline_is_deterministic(
        link in arb_link(),
        seed in any::<u64>(),
        sizes in prop::collection::vec(1usize..500, 1..10),
    ) {
        let run = |sizes: &[usize]| {
            let mut pipe = Pipe::connect(SeqEcho::default(), link, seed);
            for (i, size) in sizes.iter().enumerate() {
                pipe.client_send(&vec![i as u8; *size]);
            }
            pipe.run_to_quiescence()
                .into_iter()
                .map(|a| (a.at, a.bytes.len()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(&sizes), run(&sizes));
    }

    /// Round trips are never faster than the loss-free propagation bound.
    #[test]
    fn physics_lower_bound_holds(
        link in arb_link(),
        seed in any::<u64>(),
        size in 1usize..1_000,
    ) {
        let mut pipe = Pipe::connect(SeqEcho::default(), link, seed);
        let t0 = pipe.now();
        pipe.client_send(&vec![0u8; size]);
        let arrivals = pipe.run_to_quiescence();
        let rtt = arrivals[0].at - t0;
        let floor = link.delay + link.delay; // two propagation legs
        prop_assert!(rtt >= floor, "rtt {rtt} below physical floor {floor}");
    }
}
